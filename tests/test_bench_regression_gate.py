"""The CI benchmark regression gate (satellite of the procpool PR).

``benchmarks/check_regression.py`` is CI-critical: a bug that never
fails (or always fails) silently disables the perf gate.  These tests
drive the comparison logic and the CLI surface end to end against
synthetic reports.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


BASE = {"quick": True, "warm_speedup": 10.0, "warm_cell_ms": 8.0}


class TestCompare:
    def test_identical_reports_pass(self):
        verdict = check_regression.compare(BASE, dict(BASE), 0.30, {})
        assert verdict["ok"]
        assert verdict["regressions"] == []

    def test_within_tolerance_passes_both_directions(self):
        current = {**BASE, "warm_speedup": 7.5, "warm_cell_ms": 10.0}
        verdict = check_regression.compare(BASE, current, 0.30, {})
        assert verdict["ok"], verdict

    def test_speedup_drop_beyond_tolerance_regresses(self):
        current = {**BASE, "warm_speedup": 6.0}  # -40%
        verdict = check_regression.compare(BASE, current, 0.30, {})
        assert verdict["regressions"] == ["warm_speedup"]

    def test_cell_ms_growth_beyond_tolerance_regresses(self):
        current = {**BASE, "warm_cell_ms": 12.0}  # +50%, lower-is-better
        verdict = check_regression.compare(BASE, current, 0.30, {})
        assert verdict["regressions"] == ["warm_cell_ms"]

    def test_improvements_never_fail(self):
        current = {**BASE, "warm_speedup": 100.0, "warm_cell_ms": 0.5}
        verdict = check_regression.compare(BASE, current, 0.30, {})
        assert verdict["ok"]

    def test_per_metric_override_loosens_only_that_metric(self):
        current = {**BASE, "warm_cell_ms": 12.0, "warm_speedup": 6.0}
        verdict = check_regression.compare(
            BASE, current, 0.30, {"warm_cell_ms": 0.60}
        )
        assert verdict["regressions"] == ["warm_speedup"]

    def test_missing_metric_is_not_comparable_not_a_crash(self):
        verdict = check_regression.compare(BASE, {"quick": True}, 0.30, {})
        assert all(
            row["verdict"] == "not-comparable"
            for row in verdict["metrics"].values()
        )
        assert verdict["ok"]  # nothing measurable, nothing gated


class TestCli:
    def _write(self, tmp_path: Path, name: str, payload: dict) -> Path:
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def _run(self, tmp_path, current, baseline, *extra):
        trend = tmp_path / "trend.json"
        code = check_regression.main(
            [
                "--current", str(self._write(tmp_path, "cur.json", current)),
                "--baseline", str(self._write(tmp_path, "base.json", baseline)),
                "--trend-out", str(trend),
                *extra,
            ]
        )
        return code, json.loads(trend.read_text())

    def test_pass_writes_trend(self, tmp_path):
        code, trend = self._run(tmp_path, dict(BASE), dict(BASE))
        assert code == 0
        assert trend["ok"]
        assert trend["metrics"]["warm_speedup"]["delta"] == 0.0

    def test_regression_fails_and_still_writes_trend(self, tmp_path):
        code, trend = self._run(
            tmp_path, {**BASE, "warm_speedup": 1.0}, dict(BASE)
        )
        assert code == 1
        assert trend["regressions"] == ["warm_speedup"]

    def test_grid_mismatch_skips_gate(self, tmp_path):
        code, trend = self._run(
            tmp_path, {**BASE, "quick": False, "warm_speedup": 1.0}, BASE
        )
        assert code == 0
        assert "grid mismatch" in trend["skipped"]

    def test_same_quick_flag_but_different_grid_also_skips(self, tmp_path):
        # the quick flag alone is not comparability: an edited quick
        # grid measures different work even though both runs are quick
        current = {
            **BASE,
            "grid": ["MobileNetV3Small/bs4"],
            "warm_speedup": 1.0,
        }
        baseline = {**BASE, "grid": ["MnasNet/bs16"]}
        code, trend = self._run(tmp_path, current, baseline)
        assert code == 0
        assert "grid mismatch" in trend["skipped"]

    def test_missing_current_is_exit_2(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BASE)
        code = check_regression.main(
            ["--current", str(tmp_path / "nope.json"),
             "--baseline", str(baseline)]
        )
        assert code == 2

    def test_unknown_override_metric_rejected(self):
        with pytest.raises(SystemExit):
            check_regression.parse_overrides(["no_such_metric=0.5"])


def test_checked_in_baseline_parses_and_has_the_gated_metrics():
    baseline_path = (
        Path(__file__).resolve().parent.parent
        / "benchmarks"
        / "baselines"
        / "BENCH_pipeline.baseline.json"
    )
    baseline = json.loads(baseline_path.read_text())
    for metric in check_regression.METRICS:
        assert isinstance(baseline[metric], (int, float)), metric
    assert baseline["peaks_byte_identical"] is True


class TestPresets:
    """The artifact-store lane rides the same gate via --preset."""

    ARTIFACTS_BASE = {
        "quick": True,
        "store_speedup": 4.0,
        "store_cell_ms": 40.0,
    }

    def test_pipeline_preset_is_the_module_metrics(self):
        metrics, basename = check_regression.METRIC_PRESETS["pipeline"]
        assert metrics is check_regression.METRICS
        assert basename == "BENCH_pipeline"

    def test_compare_with_explicit_metrics(self):
        current = {**self.ARTIFACTS_BASE, "store_speedup": 2.0}  # -50%
        metrics = check_regression.METRIC_PRESETS["artifacts"][0]
        verdict = check_regression.compare(
            self.ARTIFACTS_BASE, current, 0.30, {}, metrics
        )
        assert verdict["regressions"] == ["store_speedup"]

    def test_artifacts_preset_cli(self, tmp_path):
        current = tmp_path / "cur.json"
        current.write_text(json.dumps(self.ARTIFACTS_BASE))
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(self.ARTIFACTS_BASE))
        trend = tmp_path / "trend.json"
        code = check_regression.main(
            [
                "--preset", "artifacts",
                "--current", str(current),
                "--baseline", str(baseline),
                "--trend-out", str(trend),
            ]
        )
        assert code == 0
        assert "store_speedup" in json.loads(trend.read_text())["metrics"]

    def test_regression_message_names_metric_and_numbers(
        self, tmp_path, capsys
    ):
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps({**self.ARTIFACTS_BASE, "store_cell_ms": 80.0})
        )
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(self.ARTIFACTS_BASE))
        code = check_regression.main(
            [
                "--preset", "artifacts",
                "--current", str(current),
                "--baseline", str(baseline),
                "--trend-out", str(tmp_path / "trend.json"),
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        # the failure says which metric tripped, with its numbers
        assert "store_cell_ms" in err
        assert "lower-is-better" in err
        assert "40" in err and "80" in err
        assert "+100.0%" in err

    def test_checked_in_artifacts_baseline_has_the_gated_metrics(self):
        baseline_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "baselines"
            / "BENCH_artifacts.baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        metrics = check_regression.METRIC_PRESETS["artifacts"][0]
        for metric in metrics:
            assert isinstance(baseline[metric], (int, float)), metric
        assert baseline["peaks_byte_identical"] is True
        assert baseline["delta_identity"]["identical"] is True

    CONTROL_BASE = {
        "quick": True,
        "well_p99_ratio": 1.2,
        "hostile_shed_fraction": 0.85,
        "admission_overhead_us": 2.0,
    }

    def test_control_preset_metric_directions(self):
        metrics, basename = check_regression.METRIC_PRESETS["control"]
        assert basename == "BENCH_control"
        assert metrics["well_p99_ratio"] == "lower"
        assert metrics["hostile_shed_fraction"] == "higher"
        assert metrics["admission_overhead_us"] == "lower"

    def test_control_preset_catches_fairness_regression(self, tmp_path):
        # the well-behaved tenant's p99 doubling relative to solo is
        # exactly what this lane exists to stop
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps({**self.CONTROL_BASE, "well_p99_ratio": 2.4})
        )
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(self.CONTROL_BASE))
        code = check_regression.main(
            [
                "--preset", "control",
                "--current", str(current),
                "--baseline", str(baseline),
                "--trend-out", str(tmp_path / "trend.json"),
            ]
        )
        assert code == 1

    def test_control_preset_catches_shed_fraction_drop(self, tmp_path):
        # hostile sheds collapsing means the flood is reaching the
        # queues — higher-is-better metric, so a drop regresses
        current = tmp_path / "cur.json"
        current.write_text(
            json.dumps({**self.CONTROL_BASE, "hostile_shed_fraction": 0.3})
        )
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(self.CONTROL_BASE))
        code = check_regression.main(
            [
                "--preset", "control",
                "--current", str(current),
                "--baseline", str(baseline),
                "--trend-out", str(tmp_path / "trend.json"),
            ]
        )
        assert code == 1

    def test_checked_in_control_baseline_has_the_gated_metrics(self):
        baseline_path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "baselines"
            / "BENCH_control.baseline.json"
        )
        baseline = json.loads(baseline_path.read_text())
        metrics = check_regression.METRIC_PRESETS["control"][0]
        for metric in metrics:
            assert isinstance(baseline[metric], (int, float)), metric
        assert baseline["quick"] is True  # CI runs --quick
        assert baseline["cross_driver"]["identical"] is True
        assert baseline["well_behaved"]["quota_shed"] == 0

    def test_unknown_preset_exits_2_listing_valid_presets(self, capsys):
        code = check_regression.main(["--preset", "no-such-preset"])
        assert code == 2
        err = capsys.readouterr().err
        assert "no-such-preset" in err
        for preset in check_regression.METRIC_PRESETS:
            assert preset in err


_RENDER_SPEC = importlib.util.spec_from_file_location(
    "render_trend",
    Path(__file__).resolve().parent.parent / "benchmarks" / "render_trend.py",
)
render_trend = importlib.util.module_from_spec(_RENDER_SPEC)
_RENDER_SPEC.loader.exec_module(render_trend)


class TestRenderTrend:
    """The human-readable face of the gate's trend artifact."""

    OK_TREND = {
        "baseline_grid": ["MnasNet/bs16"],
        "current_grid": ["MnasNet/bs16"],
        "metrics": {
            "warm_speedup": {
                "baseline": 10.0, "current": 9.0, "delta": -0.1,
                "direction": "higher", "tolerance": 0.3, "verdict": "ok",
            },
        },
        "regressions": [],
        "ok": True,
    }

    def _write(self, tmp_path: Path, payload) -> Path:
        path = tmp_path / "trend.json"
        path.write_text(
            payload if isinstance(payload, str) else json.dumps(payload)
        )
        return path

    def test_ok_trend_renders_table_and_verdict(self, tmp_path):
        text = render_trend.render_file(self._write(tmp_path, self.OK_TREND))
        assert "warm_speedup" in text
        assert "-10.0%" in text
        assert "ok: all metrics within tolerance" in text

    def test_regression_trend_names_the_metric(self, tmp_path):
        trend = json.loads(json.dumps(self.OK_TREND))
        trend["metrics"]["warm_speedup"]["verdict"] = "regression"
        trend["regressions"] = ["warm_speedup"]
        trend["ok"] = False
        text = render_trend.render_file(self._write(tmp_path, trend))
        assert "REGRESSIONS: warm_speedup" in text

    def test_skipped_trend_says_so_instead_of_a_table(self, tmp_path):
        trend = {"skipped": "grid mismatch: refresh the baseline"}
        text = render_trend.render_file(self._write(tmp_path, trend))
        assert "SKIPPED: grid mismatch" in text
        assert "warm_speedup" not in text

    def test_cli_writes_rendered_artifact(self, tmp_path):
        trend = self._write(tmp_path, self.OK_TREND)
        out = tmp_path / "trend.txt"
        code = render_trend.main(["--trend", str(trend), "--out", str(out)])
        assert code == 0
        assert "ok: all metrics within tolerance" in out.read_text()

    def test_cli_missing_input_is_exit_2(self, tmp_path):
        code = render_trend.main(
            ["--trend", str(tmp_path / "nope.json"),
             "--out", str(tmp_path / "out.txt")]
        )
        assert code == 2

    def test_cli_malformed_json_is_exit_2(self, tmp_path):
        trend = self._write(tmp_path, "{not json")
        out = tmp_path / "out.txt"
        code = render_trend.main(["--trend", str(trend), "--out", str(out)])
        assert code == 2
        assert not out.exists()

    def test_malformed_metric_entry_is_skipped_not_a_crash(self, tmp_path):
        # a hand-edited or truncated trend can leave a metric entry as a
        # bare number; the renderer must drop the row and keep the rest
        trend = json.loads(json.dumps(self.OK_TREND))
        trend["metrics"]["warm_cell_ms"] = 8.0
        text = render_trend.render_file(self._write(tmp_path, trend))
        assert "warm_speedup" in text  # the intact row survived
        assert "warm_cell_ms" in text
        assert "skipped" in text
        assert "ok: all metrics within tolerance" in text
