"""Training-engine semantics: lifetimes, loop shape, zero_grad placement."""

import pytest

from repro.allocator.caching import CachingAllocator
from repro.allocator.device import DeviceAllocator
from repro.runtime.backend import GpuBackend
from repro.runtime.loop import POS0, POS1, TrainLoopConfig
from repro.runtime.sink import AllocatorSink
from repro.trace.builder import TraceBuilder
from repro.units import GiB
from tests.conftest import run_tiny_engine


class TestLoopConfig:
    def test_defaults(self):
        loop = TrainLoopConfig()
        assert loop.zero_grad_position == POS1
        assert loop.set_to_none

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            TrainLoopConfig(zero_grad_position="pos2")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            TrainLoopConfig(iterations=0)


class TestEngineLifetimes:
    def test_run_completes(self):
        _, result = run_tiny_engine()
        assert not result.oom
        assert result.completed_iterations == 2

    def test_everything_freed_except_persistents(self):
        """At run end only params, grads, optimizer state, and library
        workspaces survive — no leaked activations."""
        allocator = CachingAllocator(DeviceAllocator(capacity=2 * GiB))
        sink = AllocatorSink(allocator)
        engine, result = run_tiny_engine(
            sink=sink, backend=GpuBackend(seed=1), optimizer="adam"
        )
        persistent = (
            result.param_bytes
            + result.optimizer_state_bytes
            + sum(h.size for h in engine._grad_handles.values())
            + sum(h.size for h in engine._library_state.values())
        )
        assert sink.live_bytes == persistent

    def test_optimizer_state_allocated_once(self):
        allocator = CachingAllocator(DeviceAllocator(capacity=2 * GiB))
        sink = AllocatorSink(allocator)
        _, result = run_tiny_engine(
            sink=sink,
            backend=GpuBackend(seed=1),
            optimizer="adam",
            loop=TrainLoopConfig(iterations=3),
        )
        assert result.optimizer_state_bytes == 2 * result.param_bytes

    def test_param_bytes_match_model(self):
        engine, result = run_tiny_engine()
        assert result.param_bytes == engine.model.parameter_bytes()


class TestZeroGradPlacement:
    def tiny_peak_for(self, position: str, set_to_none: bool = True) -> int:
        allocator = CachingAllocator(DeviceAllocator(capacity=4 * GiB))
        sink = AllocatorSink(allocator)
        run_tiny_engine(
            sink=sink,
            backend=GpuBackend(seed=5),
            optimizer="adam",
            batch_size=16,
            loop=TrainLoopConfig(
                iterations=3,
                zero_grad_position=position,
                set_to_none=set_to_none,
            ),
        )
        return allocator.peak_reserved_bytes

    def test_pos0_keeps_gradients_through_forward(self):
        """Fig. 1: POS0 (zero_grad before backward) holds last iteration's
        gradients across the forward pass -> larger segment peak.  The
        effect needs parameter-scale gradients, so a real model is used."""
        from repro.runtime.ground_truth import run_gpu_ground_truth

        peaks = {}
        for position in (POS0, POS1):
            result = run_gpu_ground_truth(
                "distilgpt2",
                batch_size=4,
                optimizer="adam",
                loop=TrainLoopConfig(
                    iterations=3, zero_grad_position=position
                ),
                capacity_bytes=12 * GiB,
                seed=2,
                iterations=3,
            )
            peaks[position] = result.peak_reserved_bytes
        assert peaks[POS0] > peaks[POS1]

    def test_set_to_none_false_makes_placement_irrelevant(self):
        peak0 = self.tiny_peak_for(POS0, set_to_none=False)
        peak1 = self.tiny_peak_for(POS1, set_to_none=False)
        assert peak0 == peak1


class TestTraceEmission:
    def test_trace_structure(self):
        builder = TraceBuilder()
        run_tiny_engine(tracer=builder, loop=TrainLoopConfig(iterations=2))
        trace = builder.finish()
        assert trace.num_iterations() == 2
        assert len(trace.zero_grad_spans()) == 2
        assert len(trace.optimizer_step_spans()) == 2
        assert len(trace.dataloader_spans()) == 2

    def test_memory_events_balanced_per_address(self):
        builder = TraceBuilder()
        run_tiny_engine(tracer=builder)
        trace = builder.finish()
        net = {}
        for event in trace.memory_events:
            net[event.addr] = net.get(event.addr, 0) + event.nbytes
        # all remaining live bytes are positive leftovers (params etc.)
        assert all(v >= 0 for v in net.values())

    def test_cpu_trace_defers_grad_frees_past_zero_grad(self):
        """The profiled CPU run must NOT free gradients inside the
        zero_grad window (the quirk the Orchestrator repairs)."""
        builder = TraceBuilder()
        run_tiny_engine(tracer=builder, loop=TrainLoopConfig(iterations=3))
        trace = builder.finish()
        for window in trace.zero_grad_spans():
            frees = [
                e
                for e in trace.memory_events_in(window.ts, window.end)
                if e.is_free
            ]
            assert not frees

    def test_gpu_run_frees_grads_at_zero_grad(self):
        """Without a tracer (the GPU run) zero_grad frees immediately."""
        allocator = CachingAllocator(DeviceAllocator(capacity=2 * GiB))
        sink = AllocatorSink(allocator)
        engine, _ = run_tiny_engine(
            sink=sink, backend=GpuBackend(seed=1),
            loop=TrainLoopConfig(iterations=2),
        )
        assert not engine._defer_grad_frees

    def test_backward_ops_marked(self):
        builder = TraceBuilder()
        run_tiny_engine(tracer=builder)
        trace = builder.finish()
        backward_ops = [o for o in trace.cpu_ops if o.is_backward]
        forward_ops = [o for o in trace.cpu_ops if not o.is_backward]
        assert backward_ops and forward_ops

    def test_sequence_numbers_link_fwd_bwd(self):
        builder = TraceBuilder()
        run_tiny_engine(tracer=builder)
        trace = builder.finish()
        forward_seqs = {
            o.sequence_number for o in trace.cpu_ops if not o.is_backward
        }
        backward_seqs = {
            o.sequence_number for o in trace.cpu_ops if o.is_backward
        }
        assert backward_seqs <= forward_seqs


class TestEngineOom:
    def test_oom_reported_not_raised(self):
        from repro.units import MiB

        allocator = CachingAllocator(DeviceAllocator(capacity=8 * MiB))
        sink = AllocatorSink(allocator)
        _, result = run_tiny_engine(sink=sink, backend=GpuBackend(seed=1))
        assert result.oom
        assert result.oom_error is not None

    def test_oom_with_tracer_still_finishes_trace(self):
        from repro.units import MiB

        allocator = CachingAllocator(DeviceAllocator(capacity=8 * MiB))
        sink = AllocatorSink(allocator)
        builder = TraceBuilder()
        _, result = run_tiny_engine(
            sink=sink, backend=GpuBackend(seed=1), tracer=builder
        )
        assert result.oom
        trace = builder.finish()  # spans were closed on abort
        # memory instant events come from the CPU profiling sink, not the
        # allocator sink, so only the span structure is expected here
        assert trace.spans
