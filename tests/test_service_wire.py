"""Wire codec properties: framing, envelope round trips, strict decode.

The TCP transport's correctness rests on the same invariant the pickle
properties pin for the process driver: everything that crosses the wire
survives serialization exactly.  Here the codec is the framed JSON one
(:mod:`repro.service.wire`), so three more things need pinning — frames
reassemble correctly from arbitrary TCP chunkings, time fields rebase
correctly across *skewed* clocks (the cross-host bug this PR fixes), and
malformed input of any shape is rejected with ``WireProtocolError``
rather than crashing or desynchronizing the stream.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import EstimationResult
from repro.errors import (
    DeadlineExceededError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from repro.runtime.loop import POS0, POS1
from repro.service import RequestContext, ServiceRequest
from repro.service.wire import (
    HEADER_BYTES,
    FrameDecoder,
    RemoteServiceError,
    WireProtocolError,
    encode_frame,
    envelope_from_wire,
    envelope_to_wire,
    error_from_wire,
    error_response,
    error_to_wire,
    ok_response,
    result_from_wire,
    result_to_wire,
    validate_request_message,
)
from repro.workload import DeviceSpec, WorkloadConfig

# strategies mirror tests/test_service_pickle.py (tests are not a
# package, so sibling imports are off the table — keep these in sync)
names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=24,
)

workloads = st.builds(
    WorkloadConfig,
    model=names,
    optimizer=names,
    batch_size=st.integers(1, 65536),
    zero_grad_position=st.sampled_from((POS0, POS1)),
    set_to_none=st.booleans(),
)

devices = st.builds(
    DeviceSpec,
    name=names,
    capacity_bytes=st.integers(1, 2**48),
    init_bytes=st.integers(0, 2**40),
    framework_bytes=st.integers(0, 2**32),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    names,
)
bags = st.dictionaries(names, scalars, max_size=4)
#: nested annotation bags — callers attach structured metadata too
nested_bags = st.dictionaries(
    names, st.one_of(scalars, bags, st.lists(scalars, max_size=3)), max_size=4
)

requests = st.builds(
    ServiceRequest,
    workload=workloads,
    device=devices,
    fingerprint=names,
    metadata=nested_bags,
)

stage_maps = st.dictionaries(
    st.sampled_from(("profile", "analyze", "orchestrate", "simulate")),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    max_size=4,
)

results = st.builds(
    EstimationResult,
    estimator=names,
    workload=workloads,
    device=devices,
    peak_bytes=st.integers(0, 2**48),
    runtime_seconds=st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False
    ),
    supported=st.booleans(),
    detail=bags,
    stage_seconds=stage_maps,
    stage_cached=st.dictionaries(
        st.sampled_from(("profile", "analyze", "orchestrate", "simulate")),
        st.booleans(),
        max_size=4,
    ),
)

contexts = st.builds(
    RequestContext,
    request_id=st.integers(1, 2**31),
    submitted_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    fingerprint=names,
    deadline=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
    ),
    attempt=st.integers(1, 16),
    shard_hint=st.one_of(st.none(), st.integers(0, 63)),
    cache_hit=st.booleans(),
    deduplicated=st.booleans(),
    tags=bags,
    metadata=bags,
)


# ----------------------------------------------------------------------
# framing + reassembly
# ----------------------------------------------------------------------


@settings(max_examples=50)
@given(payload=nested_bags)
def test_frame_round_trips(payload):
    decoder = FrameDecoder()
    messages = decoder.feed(encode_frame(payload))
    assert messages == [json.loads(json.dumps(payload))]
    assert decoder.buffered_bytes == 0


@settings(max_examples=50)
@given(
    payloads=st.lists(nested_bags, min_size=1, max_size=5),
    chunk_size=st.integers(1, 40),
)
def test_frames_reassemble_from_arbitrary_chunking(payloads, chunk_size):
    """TCP may split/coalesce frames anywhere; the decoder must not care."""
    stream = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    received = []
    for start in range(0, len(stream), chunk_size):
        received.extend(decoder.feed(stream[start : start + chunk_size]))
    expected = [json.loads(json.dumps(p)) for p in payloads]
    assert received == expected
    assert decoder.buffered_bytes == 0


def test_truncated_frame_stays_buffered_without_error():
    frame = encode_frame({"op": "ping", "id": 1})
    decoder = FrameDecoder()
    assert decoder.feed(frame[:-3]) == []
    assert decoder.buffered_bytes == len(frame) - 3
    assert decoder.feed(frame[-3:]) == [{"op": "ping", "id": 1}]


def test_oversized_frame_header_is_rejected():
    decoder = FrameDecoder(max_frame_bytes=1024)
    header = struct.pack(">I", 1025)
    with pytest.raises(WireProtocolError, match="over the"):
        decoder.feed(header)


def test_oversized_payload_is_rejected_at_encode_time():
    with pytest.raises(WireProtocolError, match="exceeds"):
        encode_frame({"blob": "x" * 2048}, max_frame_bytes=1024)


def test_zero_length_frame_is_rejected():
    decoder = FrameDecoder()
    with pytest.raises(WireProtocolError, match="zero-length"):
        decoder.feed(struct.pack(">I", 0))


def test_garbage_body_is_rejected():
    body = b"\xff\xfenot json"
    decoder = FrameDecoder()
    with pytest.raises(WireProtocolError, match="not valid JSON"):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_non_object_body_is_rejected():
    body = json.dumps([1, 2, 3]).encode()
    decoder = FrameDecoder()
    with pytest.raises(WireProtocolError, match="JSON object"):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_unencodable_payload_is_rejected():
    with pytest.raises(WireProtocolError, match="not JSON-encodable"):
        encode_frame({"clock": object()})
    with pytest.raises(WireProtocolError):
        encode_frame({"bad": float("nan")})


@settings(max_examples=100)
@given(blob=st.binary(max_size=256))
def test_fuzzed_bytes_never_raise_anything_but_wire_errors(blob):
    """The strict-decode contract: garbage in, WireProtocolError or
    silence out — never an unhandled exception type."""
    decoder = FrameDecoder(max_frame_bytes=4096)
    try:
        for message in decoder.feed(blob):
            assert isinstance(message, dict)
    except WireProtocolError:
        pass


# ----------------------------------------------------------------------
# request-message schema
# ----------------------------------------------------------------------


def test_valid_ops_pass_validation():
    assert validate_request_message({"op": "ping", "id": 0}) == ("ping", 0)
    assert validate_request_message(
        {"op": "estimate", "id": 3, "request": {}, "deadline_remaining": 1.5}
    ) == ("estimate", 3)
    assert validate_request_message(
        {"op": "estimate_many", "id": 4, "requests": [{}, {}]}
    ) == ("estimate_many", 4)
    assert validate_request_message({"op": "stats", "id": 5}) == ("stats", 5)
    assert validate_request_message(
        {"op": "drain", "id": 6, "timeout": None}
    ) == ("drain", 6)


@pytest.mark.parametrize(
    "message",
    [
        {"op": "transmogrify", "id": 1},  # unknown op
        {"op": "estimate", "request": {}},  # missing id
        {"op": "estimate", "id": "7", "request": {}},  # string id
        {"op": "estimate", "id": True, "request": {}},  # bool id
        {"op": "estimate", "id": 1},  # missing request
        {"op": "estimate", "id": 1, "request": []},  # non-object request
        {  # non-numeric deadline
            "op": "estimate",
            "id": 1,
            "request": {},
            "deadline_remaining": "soon",
        },
        {"op": "estimate_many", "id": 1},  # missing requests
        {"op": "estimate_many", "id": 1, "requests": [{}, 7]},
        {"op": "drain", "id": 1, "timeout": "later"},
        {},  # empty message
    ],
)
def test_malformed_request_messages_are_rejected(message):
    with pytest.raises(WireProtocolError):
        validate_request_message(message)


# ----------------------------------------------------------------------
# result + error codecs
# ----------------------------------------------------------------------


@settings(max_examples=50)
@given(result=results)
def test_result_round_trips_through_json(result):
    clone = result_from_wire(json.loads(json.dumps(result_to_wire(result))))
    assert clone == result
    # equality excludes the stage diagnostics (compare=False) — the wire
    # trip must preserve them anyway for the client's metrics view
    assert clone.stage_seconds == result.stage_seconds
    assert clone.stage_cached == result.stage_cached
    assert clone.detail == result.detail
    assert clone.curve is None  # curves never cross the wire


def test_malformed_result_payload_raises_wire_error():
    with pytest.raises(WireProtocolError):
        result_from_wire({"estimator": "x"})  # missing everything else


@pytest.mark.parametrize(
    "error, wire_type",
    [
        (RequestRejectedError("unknown model"), "rejected"),
        (RateLimitExceededError(1.25), "rate_limited"),
        (DeadlineExceededError(0.75), "deadline"),
        (ServiceClosedError("closed"), "closed"),
        (WireProtocolError("bad frame"), "protocol"),
        (RuntimeError("boom"), "internal"),
    ],
)
def test_error_round_trips_preserve_type(error, wire_type):
    payload = json.loads(json.dumps(error_to_wire(error)))
    assert payload["type"] == wire_type
    clone = error_from_wire(payload)
    if wire_type == "internal":
        assert isinstance(clone, RemoteServiceError)
        assert clone.remote_type == "RuntimeError"
        assert "boom" in str(clone)
    else:
        assert type(clone) is type(error)
    if isinstance(error, RateLimitExceededError):
        assert clone.retry_after_seconds == error.retry_after_seconds
    if isinstance(error, DeadlineExceededError):
        assert clone.late_by_seconds == error.late_by_seconds


def test_deadline_beats_rejected_in_the_taxonomy():
    """DeadlineExceededError *is a* RequestRejectedError — the wire code
    must keep the more specific class or replay accounting drifts."""
    payload = error_to_wire(DeadlineExceededError(0.5))
    assert payload["type"] == "deadline"
    assert isinstance(error_from_wire(payload), DeadlineExceededError)


def test_error_from_wire_tolerates_junk():
    assert isinstance(error_from_wire({}), RemoteServiceError)
    assert isinstance(error_from_wire("nope"), RemoteServiceError)
    assert isinstance(
        error_from_wire({"type": "unheard-of", "message": "?"}),
        RemoteServiceError,
    )


def test_response_builders():
    ok = ok_response(7, result={"peak": 1})
    assert ok == {"id": 7, "ok": True, "result": {"peak": 1}}
    err = error_response(None, WireProtocolError("bad"))
    assert err["id"] is None and err["ok"] is False
    assert err["error"]["type"] == "protocol"


# ----------------------------------------------------------------------
# envelope round trips across skewed clocks (the cross-host bugfix)
# ----------------------------------------------------------------------


class SkewedClock:
    """Injectable clock with its own epoch — models a peer host."""

    def __init__(self, now: float):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_deadline_rebases_across_skewed_clocks():
    """The regression this PR fixes: an absolute ``time.monotonic``
    deadline from host A is meaningless on host B.  The wire form ships
    *remaining budget*, so the rebased deadline must grant the same
    budget on B's clock no matter how far the two epochs disagree."""
    client = SkewedClock(1_000.0)
    server = SkewedClock(5.0)  # e.g. freshly booted: monotonic near zero
    ctx = RequestContext(
        request_id=1,
        submitted_at=client() - 2.0,  # two seconds old
        fingerprint="fp",
        deadline=client() + 3.0,  # three seconds of budget left
    )
    payload = json.loads(json.dumps(ctx.as_dict(now=client())))
    assert payload["age_seconds"] == pytest.approx(2.0)
    assert payload["deadline_remaining"] == pytest.approx(3.0)
    assert "submitted_at" not in payload and "deadline" not in payload
    rebased = RequestContext.from_dict(payload, now=server())
    assert rebased.remaining(server()) == pytest.approx(3.0)
    assert server() - rebased.submitted_at == pytest.approx(2.0)
    # the budget then burns down on the server's clock
    server.advance(3.5)
    assert rebased.expired(server())


def test_no_deadline_stays_none_across_the_wire():
    ctx = RequestContext(request_id=1, submitted_at=10.0)
    payload = json.loads(json.dumps(ctx.as_dict(now=12.0)))
    assert payload["deadline_remaining"] is None
    rebased = RequestContext.from_dict(payload, now=99.0)
    assert rebased.deadline is None
    assert rebased.remaining(99.0) is None


def test_wire_form_requires_receiver_clock():
    ctx = RequestContext(request_id=1, submitted_at=0.0, deadline=5.0)
    payload = ctx.as_dict(now=1.0)
    with pytest.raises(ValueError, match="receiver clock"):
        RequestContext.from_dict(payload)


def test_absolute_form_still_round_trips_without_a_clock():
    # the same-clock-domain form (procpool pickle boundary) is unchanged
    ctx = RequestContext(request_id=1, submitted_at=7.0, deadline=9.0)
    clone = RequestContext.from_dict(json.loads(json.dumps(ctx.as_dict())))
    assert clone == ctx


@settings(max_examples=50)
@given(
    request=requests,
    ctx=contexts,
    sender_now=st.floats(min_value=1e9, max_value=2e9, allow_nan=False),
    receiver_now=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
)
def test_envelope_round_trips_across_skewed_clocks(
    request, ctx, sender_now, receiver_now
):
    payload = json.loads(
        json.dumps(envelope_to_wire(request, ctx, now=sender_now))
    )
    clone_request, clone_ctx = envelope_from_wire(payload, now=receiver_now)
    assert clone_request == request
    # identity/outcome fields are exact; time fields are *rebased*, so
    # compare ages and budgets, not absolute stamps
    assert clone_ctx.request_id == ctx.request_id
    assert clone_ctx.fingerprint == ctx.fingerprint
    assert clone_ctx.attempt == ctx.attempt
    assert clone_ctx.shard_hint == ctx.shard_hint
    assert clone_ctx.cache_hit == ctx.cache_hit
    assert clone_ctx.deduplicated == ctx.deduplicated
    assert clone_ctx.tags == ctx.tags
    assert clone_ctx.metadata == ctx.metadata
    age = sender_now - ctx.submitted_at
    assert receiver_now - clone_ctx.submitted_at == pytest.approx(
        age, rel=1e-6, abs=1e-6
    )
    if ctx.deadline is None:
        assert clone_ctx.deadline is None
    else:
        assert clone_ctx.remaining(receiver_now) == pytest.approx(
            ctx.remaining(sender_now), rel=1e-6, abs=1e-6
        )


def test_malformed_envelope_raises_wire_error():
    with pytest.raises(WireProtocolError):
        envelope_from_wire({"request": {}}, now=0.0)
