"""xMem end-to-end and the three baselines."""

import pytest

from repro.baselines.dnnmem import DNNMemEstimator
from repro.baselines.llmem import LLMemEstimator
from repro.baselines.schedtune import HistoryRecord, SchedTuneEstimator
from repro.core.estimator import XMemEstimator
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.units import GiB, MiB
from repro.workload import RTX_3060, RTX_4060, DeviceSpec, WorkloadConfig


WORKLOAD = WorkloadConfig("distilgpt2", "adamw", 4)
CNN_WORKLOAD = WorkloadConfig("MobileNetV3Small", "sgd", 64)


@pytest.fixture(scope="module")
def xmem_result():
    return XMemEstimator().estimate(WORKLOAD, RTX_3060)


@pytest.fixture(scope="module")
def ground_truth():
    return run_gpu_ground_truth(
        WORKLOAD.model,
        WORKLOAD.batch_size,
        WORKLOAD.optimizer,
        capacity_bytes=RTX_3060.job_budget(),
        seed=13,
    )


class TestXMem:
    def test_estimate_within_5pct_of_truth(self, xmem_result, ground_truth):
        error = abs(xmem_result.peak_bytes - ground_truth.measured_peak)
        assert error / ground_truth.measured_peak < 0.05

    def test_estimate_has_curve(self, xmem_result):
        assert xmem_result.curve is not None
        assert xmem_result.curve.peak_reserved() == xmem_result.peak_bytes

    def test_detail_diagnostics(self, xmem_result):
        assert xmem_result.detail["num_blocks"] > 0
        assert xmem_result.detail["persistent_bytes"] > 0
        assert "rule_adjustments" in xmem_result.detail

    def test_supports_everything(self):
        assert XMemEstimator().supports(WORKLOAD)
        assert XMemEstimator().supports(CNN_WORKLOAD)

    def test_estimate_from_saved_trace(self, tmp_path):
        """Deployment mode: users hand xMem existing profiler output."""
        from repro.runtime.profiler import profile_on_cpu
        from repro.trace.reader import Trace

        trace = profile_on_cpu(
            WORKLOAD.model, WORKLOAD.batch_size, WORKLOAD.optimizer
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        result = XMemEstimator().estimate(
            WORKLOAD, RTX_3060, trace=Trace.load(path)
        )
        fresh = XMemEstimator().estimate(WORKLOAD, RTX_3060)
        assert result.peak_bytes == fresh.peak_bytes

    def test_deterministic(self):
        first = XMemEstimator().estimate(CNN_WORKLOAD, RTX_3060)
        second = XMemEstimator().estimate(CNN_WORKLOAD, RTX_3060)
        assert first.peak_bytes == second.peak_bytes

    def test_orchestrator_ablation_changes_estimate(self):
        full = XMemEstimator().estimate(WORKLOAD, RTX_3060)
        ablated = XMemEstimator(orchestrate=False).estimate(WORKLOAD, RTX_3060)
        assert ablated.peak_bytes >= full.peak_bytes

    def test_tensor_accounting_underestimates(self, xmem_result):
        tensor_only = XMemEstimator(account="tensor").estimate(
            WORKLOAD, RTX_3060
        )
        assert tensor_only.peak_bytes < xmem_result.peak_bytes

    def test_single_iteration_misses_optimizer_peak(self):
        """DESIGN.md ablation 4: 1-iteration profiles miss the stabilized
        second-iteration peak that includes optimizer state."""
        one = XMemEstimator(iterations=1).estimate(WORKLOAD, RTX_3060)
        three = XMemEstimator(iterations=3).estimate(WORKLOAD, RTX_3060)
        assert one.peak_bytes < three.peak_bytes

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            XMemEstimator(iterations=0)

    def test_oom_prediction(self):
        tiny_device = DeviceSpec(
            name="tiny", capacity_bytes=1 * GiB, framework_bytes=128 * MiB
        )
        result = XMemEstimator().estimate(WORKLOAD, tiny_device)
        assert result.predicts_oom()


class TestDNNMem:
    def test_underestimates_adam_workloads(self, ground_truth):
        """The static graph lacks optimizer state (paper §5.1)."""
        result = DNNMemEstimator().estimate(WORKLOAD, RTX_3060)
        assert result.peak_bytes < ground_truth.measured_peak

    def test_blind_to_zero_grad_placement(self):
        pos0 = DNNMemEstimator().estimate(
            WorkloadConfig("distilgpt2", "sgd", 4, zero_grad_position="pos0"),
            RTX_3060,
        )
        pos1 = DNNMemEstimator().estimate(
            WorkloadConfig("distilgpt2", "sgd", 4, zero_grad_position="pos1"),
            RTX_3060,
        )
        assert pos0.peak_bytes == pos1.peak_bytes

    def test_blind_to_optimizer_choice(self):
        adam = DNNMemEstimator().estimate(
            WorkloadConfig("gpt2", "adam", 2), RTX_3060
        )
        sgd = DNNMemEstimator().estimate(
            WorkloadConfig("gpt2", "sgd", 2), RTX_3060
        )
        assert adam.peak_bytes == sgd.peak_bytes

    def test_more_accurate_for_sgd(self):
        """Paper §5.1: estimates are 'more accurate for the lowest-overhead
        optimizers like SGD'."""
        workload_sgd = WorkloadConfig("distilgpt2", "sgd", 4)
        truth = run_gpu_ground_truth(
            "distilgpt2", 4, "sgd",
            capacity_bytes=RTX_3060.job_budget(), seed=13,
        )
        result = DNNMemEstimator().estimate(workload_sgd, RTX_3060)
        sgd_error = abs(result.peak_bytes - truth.measured_peak) / truth.measured_peak
        adam_truth = run_gpu_ground_truth(
            "distilgpt2", 4, "adam",
            capacity_bytes=RTX_3060.job_budget(), seed=13,
        )
        adam_result = DNNMemEstimator().estimate(WORKLOAD, RTX_3060)
        adam_error = abs(
            adam_result.peak_bytes - adam_truth.measured_peak
        ) / adam_truth.measured_peak
        assert sgd_error < adam_error

    def test_supports_cnns(self):
        result = DNNMemEstimator().estimate(CNN_WORKLOAD, RTX_3060)
        assert result.supported and result.peak_bytes > 0


class TestSchedTune:
    @pytest.fixture(scope="class")
    def fitted(self):
        history = []
        for model, optimizer, batch, peak_gib in [
            ("MobileNetV3Small", "sgd", 32, 0.4),
            ("MobileNetV3Small", "sgd", 128, 1.1),
            ("MobileNetV3Small", "adam", 64, 0.8),
            ("ResNet101", "sgd", 64, 1.4),
            ("ResNet101", "adam", 128, 2.8),
            ("distilgpt2", "adam", 4, 2.6),
            ("distilgpt2", "sgd", 8, 2.4),
        ]:
            history.append(
                HistoryRecord(
                    workload=WorkloadConfig(model, optimizer, batch),
                    peak_bytes=int(peak_gib * GiB),
                )
            )
        estimator = SchedTuneEstimator(history=history)
        estimator.fit()
        return estimator

    def test_predicts_positive(self, fitted):
        result = fitted.estimate(CNN_WORKLOAD, RTX_3060)
        assert result.peak_bytes >= 64 * MiB

    def test_interpolation_reasonable(self, fitted):
        result = fitted.estimate(
            WorkloadConfig("MobileNetV3Small", "sgd", 64), RTX_3060
        )
        assert 0.2 * GiB < result.peak_bytes < 2 * GiB

    def test_blind_to_zero_grad_placement(self, fitted):
        pos0 = fitted.estimate(
            WorkloadConfig("ResNet101", "sgd", 64, zero_grad_position="pos0"),
            RTX_3060,
        )
        pos1 = fitted.estimate(
            WorkloadConfig("ResNet101", "sgd", 64, zero_grad_position="pos1"),
            RTX_3060,
        )
        assert pos0.peak_bytes == pos1.peak_bytes

    def test_fast_inference(self, fitted):
        result = fitted.estimate(CNN_WORKLOAD, RTX_3060)
        assert result.runtime_seconds < 0.5

    def test_supports_everything(self, fitted):
        assert fitted.supports(WORKLOAD)
        assert fitted.supports(CNN_WORKLOAD)


class TestLLMem:
    def test_rejects_cnns(self):
        estimator = LLMemEstimator()
        assert not estimator.supports(CNN_WORKLOAD)
        result = estimator.estimate(CNN_WORKLOAD, RTX_3060)
        assert not result.supported

    def test_rejects_encoder_decoder(self):
        assert not LLMemEstimator().supports(
            WorkloadConfig("t5-small", "adam", 8)
        )

    def test_supports_causal_lm(self):
        assert LLMemEstimator().supports(WORKLOAD)

    def test_probe_plus_extrapolation(self):
        result = LLMemEstimator().estimate(WORKLOAD, RTX_3060)
        assert result.supported
        assert result.peak_bytes > result.detail["probe_peak_bytes"]
        assert result.detail["act_per_sample"] > 0

    def test_probe_oom_reports_capacity(self):
        tiny = DeviceSpec(
            name="tiny", capacity_bytes=512 * MiB, framework_bytes=64 * MiB
        )
        result = LLMemEstimator().estimate(WORKLOAD, tiny)
        assert result.detail["probe_oom"]
        assert result.peak_bytes == tiny.capacity_bytes
        assert result.predicts_oom()

    def test_error_is_batch_dependent(self):
        """Measured-probe + linear extrapolation cannot hold a constant
        bias across batch sizes (allocator effects are non-linear)."""
        errors = []
        for batch in (4, 32):
            workload = WorkloadConfig("distilgpt2", "sgd", batch)
            truth = run_gpu_ground_truth(
                workload.model, batch, "sgd",
                capacity_bytes=RTX_4060.job_budget(), seed=3,
            )
            result = LLMemEstimator().estimate(workload, RTX_4060)
            errors.append(
                abs(result.peak_bytes - truth.measured_peak)
                / truth.measured_peak
            )
        assert abs(errors[0] - errors[1]) > 0.05
