"""BlockPool: sorted best-fit container semantics."""

import pytest

from repro.allocator.block import Block, Segment
from repro.allocator.pool import BlockPool


def make_block(addr: int, size: int) -> Block:
    segment = Segment(addr=addr, size=size, is_small=False)
    block = Block(addr=addr, size=size, segment=segment)
    segment.first_block = block
    return block


class TestPoolBasics:
    def test_add_and_len(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 1024))
        pool.add(make_block(4096, 2048))
        assert len(pool) == 2

    def test_contains(self):
        pool = BlockPool(is_small=False)
        block = make_block(0, 1024)
        pool.add(block)
        assert block in pool
        assert make_block(0, 1024) not in pool  # identity, not equality

    def test_duplicate_add_rejected(self):
        pool = BlockPool(is_small=False)
        block = make_block(0, 1024)
        pool.add(block)
        with pytest.raises(ValueError):
            pool.add(block)

    def test_remove(self):
        pool = BlockPool(is_small=False)
        block = make_block(0, 1024)
        pool.add(block)
        pool.remove(block)
        assert len(pool) == 0

    def test_remove_absent_raises(self):
        pool = BlockPool(is_small=False)
        with pytest.raises(KeyError):
            pool.remove(make_block(0, 512))

    def test_remove_with_equal_keys(self):
        pool = BlockPool(is_small=False)
        # same (size, addr) sort key is impossible for distinct blocks in
        # practice, but equal sizes at different addresses are common
        a = make_block(0, 1024)
        b = make_block(8192, 1024)
        pool.add(a)
        pool.add(b)
        pool.remove(b)
        assert a in pool and len(pool) == 1


class TestBestFit:
    def test_smallest_sufficient_wins(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 4096))
        pool.add(make_block(8192, 1024))
        pool.add(make_block(16384, 2048))
        best = pool.find_best_fit(1500)
        assert best is not None and best.size == 2048

    def test_lowest_address_breaks_ties(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(8192, 1024))
        pool.add(make_block(0, 1024))
        best = pool.find_best_fit(1024)
        assert best is not None and best.addr == 0

    def test_none_when_too_small(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 512))
        assert pool.find_best_fit(1024) is None

    def test_exact_match(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 2048))
        best = pool.find_best_fit(2048)
        assert best is not None and best.size == 2048


class TestQueries:
    def test_blocks_larger_than(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 1024))
        pool.add(make_block(4096, 8192))
        larger = pool.blocks_larger_than(1024)
        assert [b.size for b in larger] == [8192]

    def test_total_free_bytes(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 1024))
        pool.add(make_block(4096, 512))
        assert pool.total_free_bytes() == 1536

    def test_iteration_is_sorted(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 4096))
        pool.add(make_block(8192, 512))
        assert [b.size for b in pool] == [512, 4096]


class TestEqualKeyRemoval:
    """remove() scans blocks sharing a (size, addr) key without rescanning
    the key per loop iteration; these pin the scan's semantics."""

    def test_remove_picks_identity_among_equal_keys(self):
        pool = BlockPool(is_small=False)
        first = make_block(0, 1024)
        second = make_block(0, 1024)  # same sort key, distinct object
        pool.add(first)
        pool.add(second)
        pool.remove(second)
        assert second not in pool
        assert first in pool
        pool.remove(first)
        assert len(pool) == 0

    def test_remove_absent_equal_key_raises(self):
        pool = BlockPool(is_small=False)
        pool.add(make_block(0, 1024))
        stranger = make_block(0, 1024)
        with pytest.raises(KeyError):
            pool.remove(stranger)
