"""Trace model: events, builder nesting, JSON round-trip, reader queries."""

import pytest

from repro.errors import TraceError, TraceSchemaError
from repro.trace.builder import TraceBuilder
from repro.trace.events import (
    EventCategory,
    MemoryEvent,
    SpanEvent,
    is_profiler_step,
    is_zero_grad,
)
from repro.trace.reader import Trace
from repro.trace.schema import trace_from_json, trace_to_json
from repro.trace.stats import summarize_trace


def build_simple_trace() -> Trace:
    builder = TraceBuilder(metadata={"model": "test"})
    builder.begin_span("ProfilerStep#0", EventCategory.USER_ANNOTATION, ts=0)
    builder.begin_span("nn.Module: fc", EventCategory.PYTHON_FUNCTION, ts=1)
    builder.begin_span("aten::addmm", EventCategory.CPU_OP, ts=2)
    builder.record_alloc(3, addr=0x1000, nbytes=1024)
    builder.end_span(10)
    builder.end_span(11)
    builder.record_free(12, addr=0x1000, nbytes=1024)
    builder.end_span(20)
    return builder.finish()


class TestSpanEvent:
    def test_contains_time(self):
        span = SpanEvent("op", EventCategory.CPU_OP, ts=10, dur=5)
        assert span.contains_time(10)
        assert span.contains_time(15)
        assert not span.contains_time(16)

    def test_contains_span(self):
        outer = SpanEvent("outer", EventCategory.PYTHON_FUNCTION, ts=0, dur=100)
        inner = SpanEvent("inner", EventCategory.CPU_OP, ts=10, dur=5)
        assert outer.contains_span(inner)
        assert not inner.contains_span(outer)

    def test_annotation_predicates(self):
        step = SpanEvent("ProfilerStep#2", EventCategory.USER_ANNOTATION, 0, 1)
        zg = SpanEvent("Optimizer.zero_grad#Adam", EventCategory.USER_ANNOTATION, 0, 1)
        assert is_profiler_step(step) and not is_profiler_step(zg)
        assert is_zero_grad(zg) and not is_zero_grad(step)

    def test_memory_event_sign_convention(self):
        alloc = MemoryEvent(ts=0, addr=1, nbytes=512)
        free = MemoryEvent(ts=1, addr=1, nbytes=-512)
        assert alloc.is_alloc and not alloc.is_free
        assert free.is_free and free.size == 512


class TestBuilder:
    def test_nested_spans(self):
        trace = build_simple_trace()
        assert len(trace.spans) == 3
        assert len(trace.memory_events) == 2

    def test_unbalanced_end_raises(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.end_span(5)

    def test_finish_with_open_span_raises(self):
        builder = TraceBuilder()
        builder.begin_span("x", EventCategory.CPU_OP, ts=0)
        with pytest.raises(TraceError):
            builder.finish()

    def test_end_before_start_raises(self):
        builder = TraceBuilder()
        builder.begin_span("x", EventCategory.CPU_OP, ts=10)
        with pytest.raises(TraceError):
            builder.end_span(5)

    def test_total_allocated_running_sum(self):
        builder = TraceBuilder()
        builder.begin_span("s", EventCategory.USER_ANNOTATION, ts=0)
        builder.record_alloc(1, addr=1, nbytes=100)
        builder.record_alloc(2, addr=2, nbytes=50)
        builder.record_free(3, addr=1, nbytes=100)
        builder.end_span(4)
        trace = builder.finish()
        totals = [e.total_allocated for e in trace.memory_events]
        assert totals == [100, 150, 50]

    def test_builder_rejects_use_after_finish(self):
        builder = TraceBuilder()
        builder.annotate("x", ts=0)
        builder.finish()
        with pytest.raises(TraceError):
            builder.annotate("y", ts=1)

    def test_nonpositive_alloc_rejected(self):
        builder = TraceBuilder()
        with pytest.raises(TraceError):
            builder.record_alloc(0, addr=1, nbytes=0)


class TestSchemaRoundTrip:
    def test_round_trip_preserves_events(self):
        trace = build_simple_trace()
        document = trace_to_json(trace.spans, trace.memory_events, trace.metadata)
        spans, memory_events, metadata = trace_from_json(document)
        assert len(spans) == len(trace.spans)
        assert len(memory_events) == len(trace.memory_events)
        assert metadata == {"model": "test"}

    def test_events_sorted_by_ts(self):
        trace = build_simple_trace()
        document = trace_to_json(trace.spans, trace.memory_events, {})
        timestamps = [e["ts"] for e in document["traceEvents"]]
        assert timestamps == sorted(timestamps)

    def test_file_round_trip(self, tmp_path):
        trace = build_simple_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = Trace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.metadata["model"] == "test"

    def test_malformed_document_raises(self):
        with pytest.raises(TraceSchemaError):
            trace_from_json({"nope": []})

    def test_unknown_phase_raises(self):
        with pytest.raises(TraceSchemaError):
            trace_from_json({"traceEvents": [{"ph": "Z", "ts": 0}]})

    def test_bad_span_payload_raises(self):
        with pytest.raises(TraceSchemaError):
            trace_from_json(
                {"traceEvents": [{"ph": "X", "cat": "not-a-category", "ts": 0, "name": "x"}]}
            )

    def test_wrong_version_raises(self):
        with pytest.raises(TraceSchemaError):
            trace_from_json({"schemaVersion": 99, "traceEvents": []})


class TestReaderQueries:
    def test_category_views(self, tiny_trace):
        assert tiny_trace.cpu_ops
        assert tiny_trace.python_functions
        assert tiny_trace.user_annotations

    def test_iterations_detected(self, tiny_trace):
        assert tiny_trace.num_iterations() == 3
        windows = tiny_trace.iterations()
        assert all(w.name.startswith("ProfilerStep#") for w in windows)
        assert [w.ts for w in windows] == sorted(w.ts for w in windows)

    def test_iteration_window_bounds(self, tiny_trace):
        with pytest.raises(TraceError):
            tiny_trace.iteration_window(99)

    def test_zero_grad_spans_per_iteration(self, tiny_trace):
        assert len(tiny_trace.zero_grad_spans()) == 3

    def test_optimizer_step_spans(self, tiny_trace):
        assert len(tiny_trace.optimizer_step_spans()) == 3

    def test_memory_events_in_window(self, tiny_trace):
        window = tiny_trace.iteration_window(0)
        events = list(tiny_trace.memory_events_in(window.ts, window.end))
        assert events
        assert all(window.ts <= e.ts <= window.end for e in events)

    def test_enclosing_spans(self, tiny_trace):
        event = tiny_trace.memory_events[len(tiny_trace.memory_events) // 2]
        stack = tiny_trace.enclosing_spans(
            event.ts, EventCategory.PYTHON_FUNCTION
        )
        # outermost first
        assert [s.ts for s in stack] == sorted(s.ts for s in stack)


class TestSummary:
    def test_summary_counts(self, tiny_trace):
        summary = summarize_trace(tiny_trace)
        assert summary.num_iterations == 3
        assert summary.num_memory_events == summary.num_allocs + summary.num_frees
        assert summary.peak_traced_bytes > 0
        assert summary.duration_us > 0

    def test_summary_as_dict(self, tiny_trace):
        data = summarize_trace(tiny_trace).as_dict()
        assert set(data) >= {"num_cpu_ops", "num_memory_events", "peak_traced_bytes"}
