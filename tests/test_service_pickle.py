"""Pickle round-trip properties (satellite of the process-pool PR).

The process driver's correctness rests on one invariant: everything that
crosses the process boundary — the request envelope going out, the
estimation result coming back — survives serialization *exactly*.  These
properties pin it with hypothesis-generated instances: pickle round
trips preserve equality (and the canonical identity the fingerprint is
built from), and the ``as_dict`` wire format round-trips through JSON.
"""

from __future__ import annotations

import json
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.result import EstimationResult
from repro.runtime.loop import POS0, POS1
from repro.service import RequestContext, ServiceRequest
from repro.workload import DeviceSpec, WorkloadConfig

# readable-but-arbitrary identifiers (JSON-safe text, no surrogates)
names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=24,
)

workloads = st.builds(
    WorkloadConfig,
    model=names,
    optimizer=names,
    batch_size=st.integers(1, 65536),
    zero_grad_position=st.sampled_from((POS0, POS1)),
    set_to_none=st.booleans(),
)

devices = st.builds(
    DeviceSpec,
    name=names,
    capacity_bytes=st.integers(1, 2**48),
    init_bytes=st.integers(0, 2**40),
    framework_bytes=st.integers(0, 2**32),
)

#: JSON-scalar values for metadata/detail bags (what callers may attach)
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**31), 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    names,
)
bags = st.dictionaries(names, scalars, max_size=4)

requests = st.builds(
    ServiceRequest,
    workload=workloads,
    device=devices,
    fingerprint=names,
    metadata=bags,
)

#: finite stage timings — NaN would (correctly) break equality, and the
#: pipeline never produces one
stage_maps = st.dictionaries(
    st.sampled_from(("profile", "analyze", "orchestrate", "simulate")),
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    max_size=4,
)

results = st.builds(
    EstimationResult,
    estimator=names,
    workload=workloads,
    device=devices,
    peak_bytes=st.integers(0, 2**48),
    runtime_seconds=st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False
    ),
    supported=st.booleans(),
    detail=bags,
    stage_seconds=stage_maps,
    stage_cached=st.dictionaries(
        st.sampled_from(("profile", "analyze", "orchestrate", "simulate")),
        st.booleans(),
        max_size=4,
    ),
)

contexts = st.builds(
    RequestContext,
    request_id=st.integers(1, 2**31),
    submitted_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    fingerprint=names,
    deadline=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
    ),
    attempt=st.integers(1, 16),
    shard_hint=st.one_of(st.none(), st.integers(0, 63)),
    cache_hit=st.booleans(),
    deduplicated=st.booleans(),
    tags=bags,
    metadata=bags,
)


@settings(max_examples=50)
@given(workload=workloads)
def test_workload_pickle_round_trips(workload):
    clone = pickle.loads(pickle.dumps(workload))
    assert clone == workload
    assert clone.to_key() == workload.to_key()  # fingerprint identity


@settings(max_examples=50)
@given(device=devices)
def test_device_pickle_round_trips(device):
    clone = pickle.loads(pickle.dumps(device))
    assert clone == device
    assert clone.to_key() == device.to_key()


@settings(max_examples=50)
@given(request=requests)
def test_service_request_pickle_round_trips(request):
    clone = pickle.loads(pickle.dumps(request))
    assert clone == request
    assert clone.fingerprint == request.fingerprint


@settings(max_examples=50)
@given(request=requests)
def test_service_request_wire_format_survives_json(request):
    # the as_dict envelope is the substrate-agnostic wire format: it must
    # survive an actual JSON encode/decode, not just a dict copy
    payload = json.loads(json.dumps(request.as_dict()))
    clone = ServiceRequest.from_dict(payload)
    assert clone == request


@settings(max_examples=50)
@given(result=results)
def test_estimation_result_pickle_round_trips(result):
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    # equality excludes the stage diagnostics (compare=False) — the wire
    # trip must preserve them anyway, the parent merges them into metrics
    assert clone.stage_seconds == result.stage_seconds
    assert clone.stage_cached == result.stage_cached
    assert clone.detail == result.detail


@settings(max_examples=50)
@given(ctx=contexts)
def test_request_context_pickle_and_dict_round_trips(ctx):
    assert pickle.loads(pickle.dumps(ctx)) == ctx
    clone = RequestContext.from_dict(json.loads(json.dumps(ctx.as_dict())))
    assert clone == ctx
