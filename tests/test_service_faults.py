"""The fault plane is data: specs validate, plans look up, seeds replay.

Covers :mod:`repro.service.faults` in isolation — spec validation,
plan lookup precedence (blackouts dominate point faults, connection
drops never reach a dispatched request), seeded generation determinism,
JSON round-trips, and the injector's index/count bookkeeping that the
chaos reports and determinism tests build on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import InjectedFaultError, ShardBlackoutError
from repro.service import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    apply_fault_directive,
)


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="power_outage", index=0)

    @pytest.mark.parametrize(
        "kind",
        ["estimator_error", "latency_spike", "worker_kill", "connection_drop"],
    )
    def test_point_fault_needs_index(self, kind):
        kwargs = {"latency_seconds": 0.01} if kind == "latency_spike" else {}
        with pytest.raises(ValueError, match="submission index"):
            FaultSpec(kind=kind, **kwargs)

    def test_blackout_needs_window_and_shard(self):
        with pytest.raises(ValueError, match="start, stop and shard"):
            FaultSpec(kind="shard_blackout", start=0, stop=8)

    def test_blackout_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="0 <= start < stop"):
            FaultSpec(kind="shard_blackout", start=8, stop=8, shard=0)

    def test_latency_spike_needs_duration(self):
        with pytest.raises(ValueError, match="latency_seconds"):
            FaultSpec(kind="latency_spike", index=3)

    def test_spec_round_trips_through_json(self):
        spec = FaultSpec(
            kind="latency_spike", index=7, latency_seconds=0.25
        )
        payload = json.loads(json.dumps(spec.as_dict()))
        assert FaultSpec.from_dict(payload) == spec


class TestFaultPlanLookup:
    def test_point_fault_fires_at_its_index_only(self):
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="estimator_error", index=3)]
        )
        assert plan.directive_for(3, shard=0) == {"kind": "estimator_error"}
        assert plan.directive_for(2, shard=0) is None
        assert plan.directive_for(4, shard=0) is None

    def test_blackout_covers_half_open_window_on_one_shard(self):
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="shard_blackout", start=4, stop=8, shard=1)]
        )
        assert plan.directive_for(4, shard=1) == {
            "kind": "shard_blackout",
            "shard": 1,
        }
        assert plan.directive_for(7, shard=1) is not None
        assert plan.directive_for(8, shard=1) is None  # stop is exclusive
        assert plan.directive_for(5, shard=0) is None  # other shards healthy

    def test_blackout_dominates_point_fault(self):
        plan = FaultPlan.from_specs(
            [
                FaultSpec(kind="estimator_error", index=5),
                FaultSpec(kind="shard_blackout", start=0, stop=10, shard=2),
            ]
        )
        assert plan.directive_for(5, shard=2)["kind"] == "shard_blackout"
        assert plan.directive_for(5, shard=0)["kind"] == "estimator_error"

    def test_connection_drop_never_dispatches(self):
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="connection_drop", index=2)]
        )
        assert plan.directive_for(2, shard=0) is None
        assert plan.is_connection_drop(2)
        assert not plan.is_connection_drop(1)

    def test_window_directive_ignores_point_faults(self):
        plan = FaultPlan.from_specs(
            [
                FaultSpec(kind="estimator_error", index=5),
                FaultSpec(kind="shard_blackout", start=0, stop=10, shard=1),
            ]
        )
        # a retry re-checks only window coverage: one-shot point faults
        # do not chase the request across attempts
        assert plan.window_directive(5, shard=0) is None
        assert plan.window_directive(5, shard=1)["kind"] == "shard_blackout"

    def test_plan_round_trips_through_json(self):
        plan = FaultPlan.seeded(
            7, 64, 4, worker_kills=2, connection_drops=3, blackouts=1
        )
        payload = json.loads(json.dumps(plan.as_dict()))
        assert FaultPlan.from_dict(payload) == plan


class TestSeededGeneration:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            error_rate=0.1,
            latency_rate=0.1,
            worker_kills=2,
            connection_drops=2,
            blackouts=1,
        )
        assert FaultPlan.seeded(11, 128, 4, **kwargs) == FaultPlan.seeded(
            11, 128, 4, **kwargs
        )

    def test_different_seed_different_plan(self):
        assert FaultPlan.seeded(1, 256, 4, error_rate=0.2) != FaultPlan.seeded(
            2, 256, 4, error_rate=0.2
        )

    def test_point_faults_never_collide(self):
        plan = FaultPlan.seeded(
            3, 64, 4, error_rate=0.2, worker_kills=8, connection_drops=8
        )
        indices = [s.index for s in plan.specs if s.index is not None]
        assert len(indices) == len(set(indices))

    def test_every_generated_kind_is_known(self):
        plan = FaultPlan.seeded(
            5, 64, 4, worker_kills=1, connection_drops=1, blackouts=1
        )
        assert plan.specs  # non-degenerate
        assert {s.kind for s in plan.specs} <= set(FAULT_KINDS)


class TestFaultInjector:
    def test_next_index_is_a_counter(self):
        injector = FaultInjector(FaultPlan())
        assert [injector.next_index() for _ in range(3)] == [0, 1, 2]
        assert injector.cursor == 3

    def test_counts_tally_what_fired(self):
        plan = FaultPlan.from_specs(
            [
                FaultSpec(kind="estimator_error", index=0),
                FaultSpec(kind="shard_blackout", start=1, stop=3, shard=0),
            ]
        )
        injector = FaultInjector(plan)
        injector.directive_for(0, shard=0)
        injector.directive_for(1, shard=0)
        injector.directive_for(2, shard=1)  # healthy shard: nothing fires
        assert injector.snapshot()["injected"] == {
            "estimator_error": 1,
            "shard_blackout": 1,
        }

    def test_peek_window_counts_nothing_and_tolerates_none(self):
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="shard_blackout", start=0, stop=4, shard=0)]
        )
        injector = FaultInjector(plan)
        assert injector.peek_window(1, shard=0) is not None
        assert injector.peek_window(None, shard=0) is None
        assert injector.counts == {}

    def test_take_connection_drop_consumes_only_planned_indices(self):
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="connection_drop", index=1)]
        )
        injector = FaultInjector(plan)
        assert not injector.take_connection_drop()  # index 0: not planned
        assert injector.next_index() == 0
        assert injector.take_connection_drop()  # index 1: dropped
        assert injector.next_index() == 2  # the drop consumed index 1
        assert injector.counts == {"connection_drop": 1}


class TestApplyFaultDirective:
    def test_none_is_a_no_op(self):
        apply_fault_directive(None)
        apply_fault_directive({})

    def test_estimator_error_raises_injected_fault(self):
        with pytest.raises(InjectedFaultError):
            apply_fault_directive({"kind": "estimator_error"})

    def test_worker_kill_degrades_to_injected_fault(self):
        # on substrates without killable workers the directive still fails
        with pytest.raises(InjectedFaultError):
            apply_fault_directive({"kind": "worker_kill"})

    def test_blackout_raises_typed_error_with_shard(self):
        with pytest.raises(ShardBlackoutError):
            apply_fault_directive({"kind": "shard_blackout", "shard": 2})

    def test_latency_spike_sleeps_then_proceeds(self):
        apply_fault_directive(
            {"kind": "latency_spike", "latency_seconds": 0.0}
        )
