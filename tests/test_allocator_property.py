"""Property-based tests: the caching allocator against a naive reference.

Random alloc/free interleavings must preserve the structural invariants
(contiguous chains, merged free neighbours, counter consistency) and agree
with a trivial reference implementation on allocated bytes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.caching import CachingAllocator
from repro.allocator.constants import AllocatorConfig
from repro.allocator.device import DeviceAllocator
from repro.allocator.rounding import round_size
from repro.units import GiB, MiB

# a step is (op, value): op 0 = alloc of `value` bytes, op 1 = free of the
# live block at index `value % len(live)`
steps = st.lists(
    st.tuples(st.integers(0, 1), st.integers(1, 48 * MiB)),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(trace=steps)
def test_invariants_under_random_traffic(trace):
    device = DeviceAllocator(capacity=16 * GiB)
    alloc = CachingAllocator(device)
    live = []
    for op, value in trace:
        if op == 0:
            block = alloc.malloc(value)
            live.append((block, value))
        elif live:
            index = value % len(live)
            block, _ = live.pop(index)
            alloc.free(block)
    alloc.check_invariants()
    # the counter equals the live blocks' actual sizes, which are at least
    # the 512-rounded requests (blocks may be bigger when the remainder
    # was not worth splitting)
    assert alloc.allocated_bytes == sum(b.size for b, _ in live)
    rounded_total = sum(round_size(req, alloc.config) for _, req in live)
    assert alloc.allocated_bytes >= rounded_total
    assert alloc.reserved_bytes >= alloc.allocated_bytes
    assert device.used_bytes == alloc.reserved_bytes


@settings(max_examples=40, deadline=None)
@given(trace=steps)
def test_empty_cache_after_full_release(trace):
    """After freeing everything and emptying the cache, the device is clean."""
    device = DeviceAllocator(capacity=16 * GiB)
    alloc = CachingAllocator(device)
    live = []
    for op, value in trace:
        if op == 0:
            live.append(alloc.malloc(value))
        elif live:
            alloc.free(live.pop(value % len(live)))
    for block in live:
        alloc.free(block)
    alloc.empty_cache()
    assert alloc.reserved_bytes == 0
    assert device.used_bytes == 0
    alloc.check_invariants()


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 8 * MiB), min_size=1, max_size=30),
    config_choice=st.sampled_from(["default", "no_split", "no_cache"]),
)
def test_peak_reserved_dominates_peak_allocated(sizes, config_choice):
    configs = {
        "default": AllocatorConfig(),
        "no_split": AllocatorConfig(allow_split=False),
        "no_cache": AllocatorConfig(cache_segments=False),
    }
    alloc = CachingAllocator(
        DeviceAllocator(capacity=16 * GiB), config=configs[config_choice]
    )
    blocks = [alloc.malloc(size) for size in sizes]
    for block in blocks:
        alloc.free(block)
    assert alloc.stats.reserved_bytes.peak >= alloc.stats.allocated_bytes.peak
    alloc.check_invariants()


@settings(max_examples=40, deadline=None)
@given(sizes=st.lists(st.integers(512, 2 * MiB), min_size=2, max_size=20))
def test_alloc_free_alloc_is_cache_hit(sizes):
    """Re-requesting a just-freed size must never touch the device again."""
    device = DeviceAllocator(capacity=16 * GiB)
    alloc = CachingAllocator(device)
    for size in sizes:
        block = alloc.malloc(size)
        alloc.free(block)
        device_allocs = device.stats.num_allocs
        again = alloc.malloc(size)
        assert device.stats.num_allocs == device_allocs
        alloc.free(again)


@settings(max_examples=30, deadline=None)
@given(seed_sizes=st.lists(st.integers(1, 4 * MiB), min_size=1, max_size=12))
def test_round_size_is_monotone_and_aligned(seed_sizes):
    config = AllocatorConfig()
    rounded = [round_size(s, config) for s in sorted(seed_sizes)]
    assert all(r % config.min_block_size == 0 for r in rounded)
    assert rounded == sorted(rounded)
    for original, result in zip(sorted(seed_sizes), rounded):
        assert result >= original
        assert result - original < config.min_block_size


@pytest.mark.parametrize("capacity", [8 * MiB, 64 * MiB])
@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.integers(1, 6 * MiB), min_size=1, max_size=15))
def test_capped_device_never_overcommits(capacity, sizes):
    from repro.errors import SimOutOfMemoryError

    device = DeviceAllocator(capacity=capacity)
    alloc = CachingAllocator(device)
    for size in sizes:
        try:
            alloc.malloc(size)
        except SimOutOfMemoryError:
            break
    assert device.used_bytes <= capacity
    alloc.check_invariants()
