"""Estimation reports, schema round-trip properties, optimizer sweeps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.report import render_report
from repro.core.result import EstimationResult
from repro.framework.optim import optimizer_names
from repro.trace.events import EventCategory, MemoryEvent, SpanEvent
from repro.trace.schema import trace_from_json, trace_to_json
from repro.units import GiB
from repro.workload import RTX_3060, WorkloadConfig
from tests.conftest import run_tiny_engine


# ---------------------------------------------------------------------
# render_report
# ---------------------------------------------------------------------
def make_result(**overrides):
    defaults = dict(
        estimator="xMem",
        workload=WorkloadConfig("gpt2", "adam", 8),
        device=RTX_3060,
        peak_bytes=3 * GiB,
        runtime_seconds=0.25,
        detail={
            "role_bytes": {
                "parameter": 500_000_000,
                "activation": 1_500_000_000,
                "optimizer_state": 1_000_000_000,
            },
            "peak_allocated_bytes": int(2.8 * GiB),
            "rule_adjustments": {"gradient_zero_grad_alignment": 12},
            "num_blocks": 2000,
            "dropped_blocks": 3,
        },
    )
    defaults.update(overrides)
    return EstimationResult(**defaults)


class TestRenderReport:
    def test_contains_headline_facts(self):
        text = render_report(make_result())
        assert "gpt2/adam/bs8" in text
        assert "3.22 GB" in text  # 3 GiB in decimal GB
        assert "fits" in text
        assert "headroom" in text

    def test_role_breakdown_rendered(self):
        text = render_report(make_result())
        assert "parameter" in text
        assert "optimizer_state" in text
        assert "%" in text

    def test_adjustments_rendered(self):
        text = render_report(make_result())
        assert "gradient_zero_grad_alignment" in text
        assert "12 block(s)" in text

    def test_oom_verdict(self):
        text = render_report(make_result(peak_bytes=20 * GiB))
        assert "OOM predicted" in text

    def test_unsupported(self):
        text = render_report(make_result(supported=False, peak_bytes=0))
        assert "not supported" in text

    def test_minimal_detail(self):
        text = render_report(make_result(detail={}))
        assert "estimated peak" in text

    def test_cli_explain_flag(self, capsys):
        from repro.cli import main

        code = main([
            "estimate", "--model", "MobileNetV3Small", "--batch-size", "16",
            "--optimizer", "adam", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "memory by role" in out
        assert "optimizer_state" in out


# ---------------------------------------------------------------------
# schema round-trip property
# ---------------------------------------------------------------------
categories = st.sampled_from(list(EventCategory))


@st.composite
def random_spans(draw):
    count = draw(st.integers(0, 20))
    spans = []
    for _ in range(count):
        ts = draw(st.integers(0, 10**6))
        spans.append(
            SpanEvent(
                name=draw(st.text(min_size=1, max_size=20)),
                category=draw(categories),
                ts=ts,
                dur=draw(st.integers(0, 10**4)),
                tid=draw(st.integers(0, 4)),
                args={"Sequence number": draw(st.integers(0, 100))},
            )
        )
    return spans


@st.composite
def random_memory_events(draw):
    count = draw(st.integers(0, 30))
    events = []
    for _ in range(count):
        nbytes = draw(st.integers(1, 10**9))
        if draw(st.booleans()):
            nbytes = -nbytes
        events.append(
            MemoryEvent(
                ts=draw(st.integers(0, 10**6)),
                addr=draw(st.integers(0, 2**48)),
                nbytes=nbytes,
                total_allocated=draw(st.integers(0, 2**40)),
            )
        )
    return events


@settings(max_examples=50, deadline=None)
@given(spans=random_spans(), memory_events=random_memory_events())
def test_schema_round_trip_property(spans, memory_events):
    document = trace_to_json(spans, memory_events, {"k": "v"})
    back_spans, back_events, metadata = trace_from_json(document)
    assert metadata == {"k": "v"}
    assert len(back_spans) == len(spans)
    assert len(back_events) == len(memory_events)
    original = sorted(
        (s.name, s.category, s.ts, s.dur, s.tid) for s in spans
    )
    recovered = sorted(
        (s.name, s.category, s.ts, s.dur, s.tid) for s in back_spans
    )
    assert original == recovered
    assert sorted((e.ts, e.addr, e.nbytes) for e in memory_events) == sorted(
        (e.ts, e.addr, e.nbytes) for e in back_events
    )


# ---------------------------------------------------------------------
# every optimizer through the engine
# ---------------------------------------------------------------------
@pytest.mark.parametrize("optimizer", optimizer_names())
def test_engine_supports_every_optimizer(optimizer):
    _, result = run_tiny_engine(optimizer=optimizer)
    assert not result.oom
    from repro.framework.optim import make_optimizer

    opt = make_optimizer(optimizer)
    if opt.stateful:
        assert result.optimizer_state_bytes > 0
    else:
        assert result.optimizer_state_bytes == 0
