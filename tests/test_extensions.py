"""Extension features: Kineto import, snapshot verify, precision, pipeline."""

import pytest

from repro.core.analyzer import Analyzer
from repro.core.precision import (
    PrecisionPlan,
    estimate_precision_peak,
    rescale_sequence,
)
from repro.core.simulator import MemorySimulator
from repro.core.verify import compare_curves, diff_snapshots
from repro.allocator.caching import CachingAllocator
from repro.allocator.device import DeviceAllocator
from repro.allocator.snapshot import memory_snapshot
from repro.allocator.stats import TimelineRecorder
from repro.core.orchestrator import MemoryOrchestrator
from repro.distributed import (
    PlanningError,
    extract_layer_profiles,
    minimum_stages,
    plan_pipeline,
)
from repro.errors import TraceSchemaError
from repro.framework.dtypes import DType
from repro.trace.kineto import import_kineto
from repro.units import GiB, MiB
from repro.workload import DeviceSpec


# ---------------------------------------------------------------------
# Kineto import
# ---------------------------------------------------------------------
def kineto_document():
    return {
        "schemaVersion": 1,
        "deviceProperties": [{"name": "cpu"}],  # skipped (dict value)
        "traceEvents": [
            {
                "ph": "X", "cat": "user_annotation", "name": "ProfilerStep#0",
                "ts": 0, "dur": 100, "pid": 1, "tid": 2, "args": {},
            },
            {
                "ph": "X", "cat": "cpu_op", "name": "aten::addmm",
                "ts": 10, "dur": 20, "pid": 1, "tid": 2,
                "args": {"Sequence number": 5},
            },
            {
                "ph": "i", "name": "[memory]", "ts": 12, "pid": 1, "tid": 2,
                "args": {
                    "Addr": 140000000, "Bytes": 4096,
                    "Total Allocated": 4096, "Device Type": 0,
                },
            },
            {
                "ph": "i", "name": "[memory]", "ts": 50, "pid": 1, "tid": 2,
                "args": {
                    "Addr": 140000000, "Bytes": -4096,
                    "Total Allocated": 0, "Device Type": 0,
                },
            },
            # GPU-side memory record: skipped
            {
                "ph": "i", "name": "[memory]", "ts": 60, "pid": 1, "tid": 2,
                "args": {"Addr": 1, "Bytes": 100, "Device Type": 1},
            },
            # kernel event: skipped
            {"ph": "X", "cat": "kernel", "name": "sgemm", "ts": 15, "dur": 3},
        ],
    }


class TestKinetoImport:
    def test_import_maps_categories(self):
        trace, report = import_kineto(kineto_document())
        assert report.num_spans == 2
        assert report.num_memory_events == 2
        assert report.num_skipped == 2
        assert trace.num_iterations() == 1
        assert trace.cpu_ops[0].sequence_number == 5

    def test_skipped_categories_reported(self):
        _, report = import_kineto(kineto_document())
        assert "kernel" in report.skipped_categories
        assert "gpu_memory" in report.skipped_categories

    def test_metadata_scalars_kept(self):
        trace, _ = import_kineto(kineto_document())
        assert trace.metadata["schemaVersion"] == 1
        assert trace.metadata["source"] == "kineto"

    def test_missing_trace_events(self):
        with pytest.raises(TraceSchemaError):
            import_kineto({"foo": 1})

    def test_malformed_memory_event(self):
        document = kineto_document()
        document["traceEvents"].append(
            {"ph": "i", "name": "[memory]", "ts": 1, "args": {"Bytes": "x"}}
        )
        with pytest.raises(TraceSchemaError):
            import_kineto(document)

    def test_file_round_trip(self, tmp_path):
        import json

        from repro.trace.kineto import load_kineto_file

        path = tmp_path / "kineto.json"
        path.write_text(json.dumps(kineto_document()))
        trace, report = load_kineto_file(path)
        assert report.num_memory_events == 2
        assert len(trace.memory_events) == 2

    def test_legacy_operator_category(self):
        document = kineto_document()
        document["traceEvents"].append(
            {"ph": "X", "cat": "Operator", "name": "aten::relu", "ts": 40, "dur": 2}
        )
        trace, _ = import_kineto(document)
        assert any(o.name == "aten::relu" for o in trace.cpu_ops)


# ---------------------------------------------------------------------
# snapshot / curve verification
# ---------------------------------------------------------------------
class TestVerify:
    def make_allocator(self, sizes):
        alloc = CachingAllocator(DeviceAllocator(capacity=GiB))
        for size in sizes:
            alloc.malloc(size)
        return alloc

    def test_identical_snapshots_match(self):
        a = memory_snapshot(self.make_allocator([512, 5 * MiB]))
        b = memory_snapshot(self.make_allocator([512, 5 * MiB]))
        diff = diff_snapshots(a, b)
        assert diff.matches()
        assert not diff.segment_size_delta

    def test_divergent_snapshots_reported(self):
        a = memory_snapshot(self.make_allocator([512, 5 * MiB]))
        b = memory_snapshot(self.make_allocator([512]))
        diff = diff_snapshots(a, b)
        assert not diff.matches()
        assert diff.reserved_gap == 20 * MiB
        assert diff.segment_size_delta == {20 * MiB: 1}

    def test_tolerance(self):
        a = memory_snapshot(self.make_allocator([512]))
        b = memory_snapshot(self.make_allocator([1024]))
        diff = diff_snapshots(a, b)
        assert diff.matches(tolerance_bytes=1024)

    def test_curve_fidelity(self):
        reference = TimelineRecorder()
        simulated = TimelineRecorder()
        for ts in range(10):
            reference.record(ts, 0, 100 * (ts + 1))
            simulated.record(ts, 0, 100 * (ts + 1) + 10)
        fidelity = compare_curves(reference, simulated, samples=16)
        assert fidelity.peak_error == pytest.approx(0.01)
        assert fidelity.mean_abs_gap == 10
        assert fidelity.max_abs_gap == 10

    def test_curve_samples_validation(self):
        with pytest.raises(ValueError):
            compare_curves(TimelineRecorder(), TimelineRecorder(), samples=1)

    def test_end_to_end_fidelity(self, tiny_trace):
        """The §3.4 loop: replay the analyzed trace, diff vs itself."""
        analyzed = Analyzer().analyze(tiny_trace)
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        first = MemorySimulator().replay(sequence)
        second = MemorySimulator().replay(sequence)
        fidelity = compare_curves(first.timeline, second.timeline)
        assert fidelity.peak_error == 0.0


# ---------------------------------------------------------------------
# mixed precision (§6.3)
# ---------------------------------------------------------------------
class TestPrecision:
    @pytest.fixture(scope="class")
    def analyzed(self, distilgpt2_trace):
        return Analyzer().analyze(distilgpt2_trace)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            PrecisionPlan(mode="int4")
        with pytest.raises(ValueError):
            PrecisionPlan(target=DType.float64)

    def test_fp16_pure_halves_most_memory(self, analyzed):
        fp32 = MemorySimulator().replay(
            MemoryOrchestrator().orchestrate(analyzed)
        )
        fp16 = estimate_precision_peak(
            analyzed, PrecisionPlan(target=DType.float16, mode="pure")
        )
        assert 0.4 * fp32.peak_reserved_bytes < fp16
        assert fp16 < 0.75 * fp32.peak_reserved_bytes

    def test_amp_between_pure_and_fp32(self, analyzed):
        fp32 = MemorySimulator().replay(
            MemoryOrchestrator().orchestrate(analyzed)
        ).peak_reserved_bytes
        pure = estimate_precision_peak(
            analyzed, PrecisionPlan(target=DType.float16, mode="pure")
        )
        amp = estimate_precision_peak(
            analyzed, PrecisionPlan(target=DType.float16, mode="amp")
        )
        assert pure < amp < fp32 * 1.05  # AMP adds a half param copy

    def test_rescale_keeps_event_count(self, analyzed):
        sequence = rescale_sequence(
            analyzed, PrecisionPlan(target=DType.float16, mode="pure")
        )
        reference = MemoryOrchestrator().orchestrate(analyzed)
        assert len(sequence.events) == len(reference.events)

    def test_bfloat16_supported(self, analyzed):
        peak = estimate_precision_peak(
            analyzed, PrecisionPlan(target=DType.bfloat16, mode="pure")
        )
        assert peak > 0


# ---------------------------------------------------------------------
# distributed planning (§6.2)
# ---------------------------------------------------------------------
class TestDistributed:
    @pytest.fixture(scope="class")
    def memory_map(self, distilgpt2_trace):
        from repro.models import get_model_spec

        analyzed = Analyzer().analyze(distilgpt2_trace)
        model = get_model_spec("distilgpt2").build()
        return extract_layer_profiles(analyzed, model, depth=1)

    def test_layers_in_execution_order(self, memory_map):
        names = [p.name for p in memory_map.layers]
        assert names.index("embed_tokens") < names.index("block0")
        assert names.index("block0") < names.index("block5")
        assert names.index("block5") < names.index("lm_head")

    def test_params_match_model(self, memory_map):
        from repro.models import get_model_spec

        model = get_model_spec("distilgpt2").build()
        assert memory_map.total_parameter_bytes() == model.parameter_bytes()

    def test_blocks_have_activations(self, memory_map):
        block = memory_map.layer("block0")
        assert block.activation_bytes > 0
        assert block.parameter_bytes > 0

    def test_plan_fits_budget(self, memory_map):
        device = DeviceSpec(
            name="small", capacity_bytes=3 * GiB, framework_bytes=256 * MiB
        )
        plan = minimum_stages(memory_map, device)
        assert plan.fits()
        assert plan.num_stages >= 1
        # stages are contiguous and cover all layers exactly once
        covered = [name for stage in plan.stages for name in stage.layers]
        assert covered == [p.name for p in memory_map.layers]

    def test_more_stages_lower_max(self, memory_map):
        device = DeviceSpec(
            name="big", capacity_bytes=64 * GiB, framework_bytes=256 * MiB
        )
        one = plan_pipeline(memory_map, device, 1)
        two = plan_pipeline(memory_map, device, 2)
        assert two.max_stage_bytes < one.max_stage_bytes

    def test_impossible_budget_raises(self, memory_map):
        device = DeviceSpec(
            name="nano", capacity_bytes=256 * MiB, framework_bytes=64 * MiB
        )
        with pytest.raises(PlanningError):
            minimum_stages(memory_map, device, max_stages=4)

    def test_too_many_stages_rejected(self, memory_map):
        device = DeviceSpec(
            name="big", capacity_bytes=64 * GiB, framework_bytes=256 * MiB
        )
        with pytest.raises(PlanningError):
            plan_pipeline(memory_map, device, num_stages=10_000)

    def test_balance_metric(self, memory_map):
        device = DeviceSpec(
            name="big", capacity_bytes=64 * GiB, framework_bytes=256 * MiB
        )
        plan = plan_pipeline(memory_map, device, 3)
        assert plan.balance >= 1.0
