"""Middleware chain: ordering, short-circuiting, error propagation."""

import pytest

from repro.core.result import EstimationResult
from repro.errors import RateLimitExceededError, RequestRejectedError
from repro.service.cache import EstimateCache
from repro.service.middleware import (
    AuditLogMiddleware,
    CacheMiddleware,
    MiddlewareChain,
    RateLimitMiddleware,
    RequestContext,
    ServiceMiddleware,
    ServiceRequest,
    TimingMiddleware,
    ValidationMiddleware,
)
from repro.units import GiB
from repro.workload import RTX_3060, DeviceSpec, WorkloadConfig

WORKLOAD = WorkloadConfig("gpt2", "adam", 8)


def make_request(workload=WORKLOAD, device=RTX_3060, fingerprint="fp"):
    return ServiceRequest(
        workload=workload, device=device, fingerprint=fingerprint
    )


def make_ctx():
    return RequestContext(request_id=1, submitted_at=0.0)


def make_result(peak=GiB, workload=WORKLOAD, device=RTX_3060):
    return EstimationResult(
        estimator="stub",
        workload=workload,
        device=device,
        peak_bytes=peak,
        runtime_seconds=0.0,
    )


class Recorder(ServiceMiddleware):
    """Logs hook invocations into a shared journal."""

    def __init__(self, label, journal, short_circuit=None, raises=None):
        self.name = label
        self.journal = journal
        self.short_circuit = short_circuit
        self.raises = raises

    def on_request(self, request, ctx):
        self.journal.append(f"{self.name}.request")
        if self.raises is not None:
            raise self.raises
        return self.short_circuit

    def on_result(self, request, result, ctx):
        self.journal.append(f"{self.name}.result")
        return None

    def on_error(self, request, error, ctx):
        self.journal.append(f"{self.name}.error")


class TestChainOrdering:
    def test_request_in_order_result_in_reverse(self):
        journal = []
        chain = MiddlewareChain(
            [Recorder(label, journal) for label in ("a", "b", "c")]
        )
        ctx = make_ctx()
        short, depth = chain.run_request(make_request(), ctx)
        assert short is None and depth == 3
        chain.run_result(make_request(), make_result(), ctx, depth)
        assert journal == [
            "a.request", "b.request", "c.request",
            "c.result", "b.result", "a.result",
        ]

    def test_short_circuit_skips_inner_layers(self):
        journal = []
        answer = make_result()
        chain = MiddlewareChain([
            Recorder("a", journal),
            Recorder("b", journal, short_circuit=answer),
            Recorder("c", journal),
        ])
        ctx = make_ctx()
        short, depth = chain.run_request(make_request(), ctx)
        assert short is answer
        assert depth == 1  # only `a` is owed an on_result
        assert ctx.short_circuited_by == "b"
        result = chain.run_result(make_request(), short, ctx, depth)
        assert result is answer
        # c never saw the request; b produced (not observed) the result
        assert journal == ["a.request", "b.request", "a.result"]

    def test_request_error_short_circuits_and_unwinds(self):
        journal = []
        boom = RequestRejectedError("nope")
        chain = MiddlewareChain([
            Recorder("a", journal),
            Recorder("b", journal, raises=boom),
            Recorder("c", journal),
        ])
        with pytest.raises(RequestRejectedError):
            chain.run_request(make_request(), make_ctx())
        assert journal == ["a.request", "b.request", "a.error"]

    def test_on_result_can_replace_result(self):
        replacement = make_result(peak=2 * GiB)

        class Replacer(ServiceMiddleware):
            def on_result(self, request, result, ctx):
                return replacement

        chain = MiddlewareChain([ServiceMiddleware(), Replacer()])
        out = chain.run_result(make_request(), make_result(), make_ctx())
        assert out is replacement

    def test_run_error_unwinds_all_entered_layers(self):
        journal = []
        chain = MiddlewareChain(
            [Recorder(label, journal) for label in ("a", "b")]
        )
        chain.run_error(make_request(), RuntimeError("x"), make_ctx())
        assert journal == ["b.error", "a.error"]


class TestCacheMiddleware:
    def test_miss_then_populate_then_hit(self):
        cache = EstimateCache()
        middleware = CacheMiddleware(cache)
        request, ctx = make_request(), make_ctx()
        assert middleware.on_request(request, ctx) is None
        assert not ctx.cache_hit
        result = make_result()
        middleware.on_result(request, result, ctx)
        ctx2 = make_ctx()
        assert middleware.on_request(request, ctx2) is result
        assert ctx2.cache_hit


class TestValidationMiddleware:
    def test_valid_request_passes(self):
        assert ValidationMiddleware().on_request(make_request(), make_ctx()) is None

    def test_unknown_model_rejected(self):
        request = make_request(workload=WorkloadConfig("nope", "adam", 8))
        with pytest.raises(RequestRejectedError, match="unknown model"):
            ValidationMiddleware().on_request(request, make_ctx())

    def test_unknown_optimizer_rejected(self):
        request = make_request(workload=WorkloadConfig("gpt2", "lion", 8))
        with pytest.raises(RequestRejectedError, match="unknown optimizer"):
            ValidationMiddleware().on_request(request, make_ctx())

    def test_oversized_batch_rejected(self):
        request = make_request(workload=WorkloadConfig("gpt2", "adam", 100))
        with pytest.raises(RequestRejectedError, match="batch size"):
            ValidationMiddleware(max_batch_size=64).on_request(
                request, make_ctx()
            )

    def test_budgetless_device_rejected(self):
        device = DeviceSpec(name="tiny", capacity_bytes=GiB // 4)
        with pytest.raises(RequestRejectedError, match="job budget"):
            ValidationMiddleware().on_request(
                make_request(device=device), make_ctx()
            )


class TestRateLimitMiddleware:
    def test_burst_then_throttle(self):
        clock = lambda: 0.0  # frozen: no refill  # noqa: E731
        middleware = RateLimitMiddleware(
            rate_per_second=1, burst=2, clock=clock
        )
        middleware.on_request(make_request(), make_ctx())
        middleware.on_request(make_request(), make_ctx())
        with pytest.raises(RateLimitExceededError) as info:
            middleware.on_request(make_request(), make_ctx())
        assert info.value.retry_after_seconds > 0

    def test_refill_restores_tokens(self):
        now = [0.0]
        middleware = RateLimitMiddleware(
            rate_per_second=10, burst=1, clock=lambda: now[0]
        )
        middleware.on_request(make_request(), make_ctx())
        with pytest.raises(RateLimitExceededError):
            middleware.on_request(make_request(), make_ctx())
        now[0] += 0.2  # 2 tokens earned, capped at burst=1
        middleware.on_request(make_request(), make_ctx())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimitMiddleware(rate_per_second=0)
        with pytest.raises(ValueError):
            RateLimitMiddleware(rate_per_second=1, burst=0)


class TestAuditLogMiddleware:
    def test_records_request_result_error(self):
        audit = AuditLogMiddleware()
        request, ctx = make_request(), make_ctx()
        audit.on_request(request, ctx)
        audit.on_result(request, make_result(), ctx)
        audit.on_error(request, RuntimeError("boom"), ctx)
        events = [r["event"] for r in audit.records]
        assert events == ["request", "result", "error"]
        assert audit.records[0]["workload"] == WORKLOAD.as_dict()
        assert audit.records[2]["error"] == "RuntimeError"

    def test_trail_is_bounded(self):
        audit = AuditLogMiddleware(max_records=3)
        for index in range(10):
            audit.on_request(make_request(fingerprint=str(index)), make_ctx())
        records = audit.records
        assert len(records) == 3
        assert [r["fingerprint"] for r in records] == ["7", "8", "9"]


class TestTimingMiddleware:
    def test_measures_request_to_result(self):
        now = [0.0]
        timing = TimingMiddleware(clock=lambda: now[0])
        request, ctx = make_request(), make_ctx()
        timing.on_request(request, ctx)
        now[0] += 0.25
        timing.on_result(request, make_result(), ctx)
        assert timing.samples == [0.25]


class TestEngineOnionSemantics:
    """Pin the documented onion ordering end-to-end through the service.

    The chain-level tests above exercise MiddlewareChain in isolation;
    these drive a real EstimationService so the ordering guarantees are
    pinned where callers actually see them (satellite of the gateway PR).
    """

    class FailingEstimator:
        name = "failing"
        version = "1"

        def supports(self, workload):
            return True

        def estimate(self, workload, device):
            raise RuntimeError("estimator exploded")

    class ConstantEstimator:
        name = "constant"
        version = "1"

        def supports(self, workload):
            return True

        def estimate(self, workload, device):
            return make_result(workload=workload, device=device)

    def test_estimator_failure_unwinds_entered_layers_in_reverse(self):
        from repro.service import EstimationService

        journal = []
        middlewares = (
            Recorder("outer", journal),
            Recorder("middle", journal),
            Recorder("inner", journal),
        )
        with EstimationService(
            estimator=self.FailingEstimator(), middlewares=middlewares
        ) as service:
            with pytest.raises(RuntimeError):
                service.estimate(WORKLOAD, RTX_3060)
        assert journal == [
            "outer.request",
            "middle.request",
            "inner.request",
            # every layer was entered, so every layer unwinds — innermost
            # first, and no on_result anywhere
            "inner.error",
            "middle.error",
            "outer.error",
        ]

    def test_short_circuit_skips_on_result_for_later_layers(self):
        from repro.service import EstimationService

        journal = []
        middlewares = (
            Recorder("outer", journal),
            Recorder("producer", journal, short_circuit=make_result()),
            Recorder("inner", journal),
        )
        with EstimationService(
            estimator=self.ConstantEstimator(), middlewares=middlewares
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
        assert journal == [
            "outer.request",
            "producer.request",
            # inner never saw the request; on_result runs only for the
            # layers outside the producer (the producer itself included
            # would re-handle its own answer)
            "outer.result",
        ]

    def test_request_hook_failure_unwinds_only_entered_layers(self):
        from repro.service import EstimationService

        journal = []
        middlewares = (
            Recorder("outer", journal),
            Recorder("thrower", journal, raises=RequestRejectedError("no")),
            Recorder("inner", journal),
        )
        with EstimationService(
            estimator=self.ConstantEstimator(), middlewares=middlewares
        ) as service:
            with pytest.raises(RequestRejectedError):
                service.estimate(WORKLOAD, RTX_3060)
        assert journal == [
            "outer.request",
            "thrower.request",
            # the thrower itself is not "entered": only outer unwinds
            "outer.error",
        ]
