"""Allocator stats/timelines and orchestration-rule unit behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator.stats import (
    StatCounter,
    TimelineRecorder,
    merge_timelines,
)
from repro.core.analyzer import AnalyzedTrace
from repro.core.attribution import AttributedBlock
from repro.core.lifecycle import MemoryBlock
from repro.core.orchestrator import (
    BatchDataRule,
    GradientRule,
    MemoryOrchestrator,
    OrchestrationRule,
    ParameterRule,
)
from repro.framework.tensor import TensorRole
from repro.trace.events import EventCategory, SpanEvent
from repro.trace.reader import Trace


class TestStatCounter:
    def test_increase_tracks_peak(self):
        counter = StatCounter()
        counter.increase(100)
        counter.increase(50)
        counter.decrease(120)
        assert counter.current == 30
        assert counter.peak == 150
        assert counter.allocated == 150
        assert counter.freed == 120

    def test_negative_current_rejected(self):
        counter = StatCounter()
        counter.increase(10)
        with pytest.raises(ValueError):
            counter.decrease(20)

    def test_reset_peak(self):
        counter = StatCounter()
        counter.increase(100)
        counter.decrease(100)
        counter.reset_peak()
        assert counter.peak == 0


class TestTimeline:
    def test_series_and_peaks(self):
        timeline = TimelineRecorder()
        timeline.record(1, 10, 100)
        timeline.record(2, 50, 200)
        timeline.record(3, 20, 200)
        assert timeline.peak_reserved() == 200
        assert timeline.peak_allocated() == 50
        ts, allocated, reserved = timeline.series()
        assert ts == [1, 2, 3]

    def test_downsample_keeps_peak(self):
        timeline = TimelineRecorder()
        for index in range(1000):
            reserved = 999 if index == 500 else index % 100
            timeline.record(index, 0, reserved)
        thinned = timeline.downsample(50)
        assert len(thinned) <= 1000
        assert thinned.peak_reserved() == 999

    def test_downsample_validation(self):
        with pytest.raises(ValueError):
            TimelineRecorder().downsample(0)

    def test_merge_orders_by_ts(self):
        a = TimelineRecorder()
        a.record(5, 0, 50)
        b = TimelineRecorder()
        b.record(1, 0, 10)
        merged = merge_timelines([a, b])
        assert [p.ts for p in merged.points] == [1, 5]

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.integers(0, 10**6), st.integers(0, 10**9)),
            min_size=1,
            max_size=200,
        )
    )
    def test_downsample_never_raises_peak(self, values):
        timeline = TimelineRecorder()
        for ts, reserved in sorted(values):
            timeline.record(ts, 0, reserved)
        for budget in (1, 5, 50):
            thinned = timeline.downsample(budget)
            assert thinned.peak_reserved() == timeline.peak_reserved()


def make_analyzed(blocks, iterations=(), zero_grads=()):
    """Minimal AnalyzedTrace for rule unit tests."""
    trace = Trace(spans=list(iterations) + list(zero_grads), memory_events=[])
    return AnalyzedTrace(
        trace=trace,
        blocks=blocks,
        iterations=list(iterations),
        zero_grads=list(zero_grads),
        optimizer_steps=[],
    )


def span(name, ts, dur, category=EventCategory.USER_ANNOTATION):
    return SpanEvent(name=name, category=category, ts=ts, dur=dur)


def attributed(role, alloc_ts, free_ts):
    block = MemoryBlock(addr=1, size=1024, alloc_ts=alloc_ts, free_ts=free_ts)
    item = AttributedBlock(block=block)
    item.role = role
    return item


class TestParameterRule:
    def test_applies_to_parameters_only(self):
        rule = ParameterRule()
        analyzed = make_analyzed([])
        param = attributed(TensorRole.PARAMETER, 1, 50)
        activation = attributed(TensorRole.ACTIVATION, 1, 50)
        assert rule.adjust(param, analyzed) is None
        assert rule.adjust(activation, analyzed) is OrchestrationRule.NO_CHANGE


class TestBatchDataRule:
    def test_clamps_to_iteration_end(self):
        iteration = span("ProfilerStep#0", 0, 100)
        analyzed = make_analyzed([], iterations=[iteration])
        late = attributed(TensorRole.BATCH_DATA, 10, 150)
        assert BatchDataRule().adjust(late, analyzed) == 100

    def test_keeps_earlier_free(self):
        iteration = span("ProfilerStep#0", 0, 100)
        analyzed = make_analyzed([], iterations=[iteration])
        early = attributed(TensorRole.BATCH_DATA, 10, 50)
        assert (
            BatchDataRule().adjust(early, analyzed)
            is OrchestrationRule.NO_CHANGE
        )

    def test_persistent_batch_clamped(self):
        iteration = span("ProfilerStep#0", 0, 100)
        analyzed = make_analyzed([], iterations=[iteration])
        leak = attributed(TensorRole.BATCH_DATA, 10, None)
        assert BatchDataRule().adjust(leak, analyzed) == 100


class TestGradientRule:
    def test_snaps_to_next_zero_grad(self):
        zero_grad = span("Optimizer.zero_grad#Adam", 200, 10)
        analyzed = make_analyzed([], zero_grads=[zero_grad])
        gradient = attributed(TensorRole.GRADIENT, 50, 400)
        adjusted = GradientRule().adjust(gradient, analyzed)
        assert 200 <= adjusted <= 210

    def test_tail_gradient_persists(self):
        zero_grad = span("Optimizer.zero_grad#Adam", 10, 5)
        analyzed = make_analyzed([], zero_grads=[zero_grad])
        tail = attributed(TensorRole.GRADIENT, 50, None)
        assert GradientRule().adjust(tail, analyzed) is None

    def test_early_free_trusted(self):
        zero_grad = span("Optimizer.zero_grad#Adam", 200, 10)
        analyzed = make_analyzed([], zero_grads=[zero_grad])
        # freed before the next zero_grad — not a parameter gradient
        transient = attributed(TensorRole.GRADIENT, 50, 100)
        assert (
            GradientRule().adjust(transient, analyzed)
            is OrchestrationRule.NO_CHANGE
        )


class TestOrchestratorComposition:
    def test_rule_order_first_match_wins(self):
        iteration = span("ProfilerStep#0", 0, 100)
        analyzed = make_analyzed(
            [attributed(TensorRole.PARAMETER, 1, None)],
            iterations=[iteration],
        )
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        # persistent parameter: alloc event only
        assert len(sequence.events) == 1
        assert sequence.persistent_bytes == 1024

    def test_free_never_precedes_alloc(self):
        zero_grad = span("Optimizer.zero_grad#Adam", 5, 2)
        analyzed = make_analyzed(
            # gradient allocated *after* the only zero_grad: tail -> persists
            [attributed(TensorRole.GRADIENT, 10, 90)],
            zero_grads=[zero_grad],
        )
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        seen_alloc = set()
        for event in sequence.events:
            from repro.core.orchestrator import EventKind

            if event.kind is EventKind.ALLOC:
                seen_alloc.add(event.block_id)
            else:
                assert event.block_id in seen_alloc


class TestBoundedTimeline:
    """The online max_points mode: memory-bounded, peaks exact."""

    @staticmethod
    def _fill(recorder, n=5000, seed=7):
        import random

        rng = random.Random(seed)
        allocated = 0
        for ts in range(n):
            allocated = max(0, allocated + rng.randint(-100, 120))
            recorder.record(ts, allocated, allocated + 50)

    def test_bounded_recorder_matches_unbounded_peaks(self):
        bounded = TimelineRecorder(max_points=32)
        unbounded = TimelineRecorder()
        self._fill(bounded)
        self._fill(unbounded)
        assert len(unbounded) == 5000
        assert len(bounded) <= 2 * 32
        assert bounded.peak_reserved() == unbounded.peak_reserved()
        assert bounded.peak_allocated() == unbounded.peak_allocated()

    def test_peak_points_survive_compaction(self):
        bounded = TimelineRecorder(max_points=16)
        self._fill(bounded, n=2000)
        assert (
            max(p.reserved_bytes for p in bounded.points)
            == bounded.peak_reserved()
        )
        assert (
            max(p.allocated_bytes for p in bounded.points)
            == bounded.peak_allocated()
        )

    def test_endpoints_survive_compaction(self):
        bounded = TimelineRecorder(max_points=8)
        self._fill(bounded, n=1000)
        assert bounded.points[0].ts == 0
        assert bounded.points[-1].ts == 999

    def test_max_points_validation(self):
        with pytest.raises(ValueError):
            TimelineRecorder(max_points=2)

    def test_unbounded_by_default(self):
        recorder = TimelineRecorder()
        self._fill(recorder, n=300)
        assert len(recorder) == 300
