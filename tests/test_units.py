"""Unit tests for byte-size helpers."""

import pytest

from repro.units import (
    GB,
    GiB,
    KiB,
    MiB,
    align_up,
    format_bytes,
    format_gb,
    parse_size,
)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(100) == "100 B"

    def test_kib(self):
        assert format_bytes(2 * KiB) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(3 * MiB + 512 * KiB) == "3.50 MiB"

    def test_gib(self):
        assert format_bytes(GiB) == "1.00 GiB"

    def test_negative_keeps_sign(self):
        assert format_bytes(-2 * MiB) == "-2.00 MiB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_precision(self):
        assert format_bytes(GiB + 512 * MiB, precision=1) == "1.5 GiB"


class TestFormatGb:
    def test_decimal_gigabytes(self):
        assert format_gb(3 * GB) == "3.00 GB"

    def test_rounding(self):
        assert format_gb(1_234_567_890) == "1.23 GB"


class TestParseSize:
    def test_plain_bytes(self):
        assert parse_size("512") == 512

    def test_binary_suffixes(self):
        assert parse_size("12GiB") == 12 * GiB
        assert parse_size("8 MiB") == 8 * MiB
        assert parse_size("1kib") == KiB

    def test_decimal_suffixes(self):
        assert parse_size("8GB") == 8 * GB

    def test_fractional(self):
        assert parse_size("1.5GiB") == int(1.5 * GiB)

    def test_unknown_suffix_raises(self):
        with pytest.raises(ValueError):
            parse_size("3 parsecs")

    def test_missing_number_raises(self):
        with pytest.raises(ValueError):
            parse_size("GiB")

    def test_round_trip_with_format(self):
        assert parse_size(format_bytes(7 * MiB)) == 7 * MiB


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(1024, 512) == 1024

    def test_rounds_up(self):
        assert align_up(1025, 512) == 1536

    def test_small_value(self):
        assert align_up(1, 512) == 512

    def test_zero(self):
        assert align_up(0, 512) == 0

    def test_invalid_alignment(self):
        with pytest.raises(ValueError):
            align_up(100, 0)
