"""§6.4 generality: the BFC core is framework-agnostic.

TensorFlow manages CUDA memory with the same Best-Fit-with-Coalescing
family of algorithms, with different constants (256 B alignment,
power-of-two region growth).  These tests run a TensorFlow-flavoured
configuration through the same simulator to back the paper's pluggability
claim.
"""


from repro.allocator.caching import CachingAllocator
from repro.allocator.constants import AllocatorConfig
from repro.allocator.device import DeviceAllocator
from repro.core.orchestrator import EventKind, MemoryOp, OrchestratedSequence
from repro.core.simulator import MemorySimulator
from repro.units import GiB, KiB, MiB

#: TensorFlow's GPU BFC allocator: 256-byte alignment, coarser regions.
TF_BFC_CONFIG = AllocatorConfig(
    min_block_size=256,
    small_size=256 * KiB,
    small_buffer=1 * MiB,
    large_buffer=8 * MiB,
    min_large_alloc=4 * MiB,
    round_large=2 * MiB,
)


class TestTensorFlowFlavour:
    def test_alignment_differs(self):
        torch_alloc = CachingAllocator(DeviceAllocator(capacity=GiB))
        tf_alloc = CachingAllocator(
            DeviceAllocator(capacity=GiB), config=TF_BFC_CONFIG
        )
        assert torch_alloc.malloc(200).size == 512  # 512 B minimum
        assert tf_alloc.malloc(200).size == 256  # 256 B alignment

    def test_segment_policy_differs(self):
        tf_alloc = CachingAllocator(
            DeviceAllocator(capacity=GiB), config=TF_BFC_CONFIG
        )
        tf_alloc.malloc(100)
        assert tf_alloc.reserved_bytes == 1 * MiB  # not PyTorch's 2 MiB
        tf_alloc.malloc(2 * MiB)
        assert tf_alloc.reserved_bytes == 1 * MiB + 8 * MiB

    def test_bfc_invariants_hold_for_both(self):
        for config in (AllocatorConfig(), TF_BFC_CONFIG):
            alloc = CachingAllocator(
                DeviceAllocator(capacity=GiB), config=config
            )
            blocks = [alloc.malloc(s) for s in (300, 5 * MiB, 700 * KiB)]
            for block in blocks[::2]:
                alloc.free(block)
            alloc.check_invariants()

    def test_simulator_accepts_custom_config(self):
        events = [
            MemoryOp(ts=1, kind=EventKind.ALLOC, block_id=1, size=3 * MiB),
            MemoryOp(ts=2, kind=EventKind.FREE, block_id=1, size=3 * MiB),
            MemoryOp(ts=3, kind=EventKind.ALLOC, block_id=2, size=2 * MiB),
        ]
        sequence = OrchestratedSequence(
            events=events, horizon=4, num_blocks=2, persistent_bytes=0
        )
        torch_result = MemorySimulator().replay(sequence)
        tf_result = MemorySimulator(allocator_config=TF_BFC_CONFIG).replay(
            sequence
        )
        assert not torch_result.oom and not tf_result.oom
        # different constants, different reserved footprints
        assert (
            torch_result.peak_reserved_bytes != tf_result.peak_reserved_bytes
        )

    def test_estimator_accepts_custom_config(self):
        from repro.core.estimator import XMemEstimator
        from repro.workload import RTX_3060, WorkloadConfig

        workload = WorkloadConfig("MobileNetV3Small", "sgd", 32)
        default = XMemEstimator().estimate(workload, RTX_3060)
        tf_flavoured = XMemEstimator(
            allocator_config=TF_BFC_CONFIG
        ).estimate(workload, RTX_3060)
        assert tf_flavoured.peak_bytes > 0
        # same tensors, different allocator: footprints differ but stay
        # within the same ballpark
        ratio = tf_flavoured.peak_bytes / default.peak_bytes
        assert 0.5 < ratio < 2.0
