"""Model zoo: registry coverage, parameter counts, plan validity."""

import pytest

from repro.errors import ModelNotFoundError
from repro.models.registry import (
    get_model_spec,
    list_models,
    rq5_models,
)

# published parameter counts (millions) with a tolerance — the memory
# experiments need realistic scale, not bit-exact counts
EXPECTED_PARAMS_M = {
    "VGG16": (138.4, 3.0),
    "VGG19": (143.7, 3.0),
    "ResNet101": (44.5, 2.0),
    "ResNet152": (60.2, 2.0),
    "MobileNetV2": (3.5, 0.5),
    "MobileNetV3Small": (2.5, 0.6),
    "MobileNetV3Large": (5.4, 0.8),
    "MnasNet": (4.4, 1.0),
    "RegNetX400MF": (5.2, 1.2),
    "RegNetY400MF": (4.3, 1.5),
    "ConvNeXtTiny": (28.6, 2.0),
    "ConvNeXtBase": (88.6, 4.0),
    "distilgpt2": (82, 4),
    "gpt2": (124, 5),
    "gpt-neo-125M": (125, 6),
    "t5-small": (60, 4),
    "t5-base": (223, 10),
    "opt-125m": (125, 6),
    "opt-350m": (331, 26),
    "Cerebras-GPT-111M": (111, 5),
    "pythia-1b": (1012, 60),
    "Qwen3-0.6B": (596, 90),
    "Llama-3.2-3B-Instruct": (3213, 200),
    "DeepSeek-R1-Distill-Qwen-1.5B": (1544, 120),
    "Qwen3-4B": (4022, 400),
}


class TestRegistry:
    def test_22_eval_models(self):
        assert len(list_models()) == 22

    def test_12_cnns_10_transformers(self):
        assert len(list_models(family="cnn")) == 12
        assert len(list_models(family="transformer")) == 10

    def test_3_rq5_models(self):
        names = {s.name for s in rq5_models()}
        assert names == {
            "Llama-3.2-3B-Instruct",
            "DeepSeek-R1-Distill-Qwen-1.5B",
            "Qwen3-4B",
        }

    def test_lookup_case_insensitive(self):
        assert get_model_spec("GPT2").name == "gpt2"
        assert get_model_spec("vgg16").name == "VGG16"

    def test_unknown_model(self):
        with pytest.raises(ModelNotFoundError):
            get_model_spec("alexnet-9000")

    def test_rq5_excluded_by_default(self):
        names = {s.name for s in list_models()}
        assert "Qwen3-4B" not in names
        names_all = {s.name for s in list_models(include_rq5=True)}
        assert "Qwen3-4B" in names_all

    def test_causal_lm_flags(self):
        assert get_model_spec("gpt2").causal_lm
        assert not get_model_spec("t5-small").causal_lm
        assert not get_model_spec("VGG16").causal_lm


@pytest.mark.parametrize("name", sorted(EXPECTED_PARAMS_M))
def test_parameter_count_matches_published(name):
    expected, tolerance = EXPECTED_PARAMS_M[name]
    model = get_model_spec(name).build()
    actual = model.num_parameters() / 1e6
    assert actual == pytest.approx(expected, abs=tolerance), (
        f"{name}: {actual:.1f}M params, expected ~{expected}M"
    )


@pytest.mark.parametrize(
    "name", [s.name for s in list_models(include_rq5=True)]
)
def test_every_model_plans(name):
    spec = get_model_spec(name)
    batch = 2
    model = spec.build()
    plan = model.build_plan(spec.input_meta(batch))
    assert plan.ops, f"{name} produced an empty plan"
    # every non-view op with an output has a positive size
    for op in plan.ops:
        if op.output is not None:
            assert op.output.nbytes > 0
    # op DAG references only earlier ops
    for op in plan.ops:
        assert all(i < op.op_id for i in op.inputs)


class TestInputSpecs:
    def test_cnn_input_shape(self):
        spec = get_model_spec("ResNet101")
        assert spec.input_meta(16).shape == (16, 3, 64, 64)
        assert spec.label_meta(16).shape == (16,)

    def test_transformer_input_shape(self):
        spec = get_model_spec("gpt2")
        assert spec.input_meta(4).shape == (4, 128)
        assert spec.label_meta(4).shape == (4, 128)

    def test_activation_scales_with_batch(self):
        spec = get_model_spec("MobileNetV2")
        plan2 = spec.build().build_plan(spec.input_meta(2))
        plan4 = spec.build().build_plan(spec.input_meta(4))
        assert plan4.total_output_bytes() == 2 * plan2.total_output_bytes()

    def test_attention_memory_quadratic_in_seq(self):
        from repro.models.transformer.configs import DISTILGPT2
        from repro.models.transformer.decoder import DecoderLM

        model = DecoderLM(DISTILGPT2)
        short = model.build_plan(model.input_meta(1, seq_len=64))
        long = model.build_plan(model.input_meta(1, seq_len=128))
        # output bytes grow superlinearly thanks to the (B,H,T,T) tensors
        assert long.total_output_bytes() > 2.1 * short.total_output_bytes()


class TestFamilies:
    def test_gqa_models_have_smaller_attention(self):
        qwen = get_model_spec("Qwen3-0.6B").build()
        params = {p.name: p for p in qwen.parameters()}
        qkv = next(v for k, v in params.items() if "qkv.weight" in k)
        # dim + 2*kv_dim < 3*dim for grouped-query attention
        assert qkv.meta.shape[0] < 3 * qkv.meta.shape[1]

    def test_t5_has_encoder_and_decoder(self):
        plan = get_model_spec("t5-small").build().build_plan(
            get_model_spec("t5-small").input_meta(1)
        )
        paths = {op.module_path for op in plan.ops}
        assert any("enc0" in p for p in paths)
        assert any("dec0" in p for p in paths)
        assert any("cross_attn" in p for p in paths)

    def test_untied_head_costs_params(self):
        pythia = get_model_spec("pythia-1b").build()
        names = [p.name for p in pythia.parameters()]
        assert any("lm_head" in n for n in names)

    def test_tied_head_is_free(self):
        gpt2 = get_model_spec("gpt2").build()
        names = [p.name for p in gpt2.parameters()]
        assert not any("lm_head" in n for n in names)
