"""Whole-zoo end-to-end sweep: every Table 2 model through the pipeline.

For each evaluation model: profile on the CPU, estimate with xMem, run the
simulated-GPU ground truth, and check the estimate is sane (positive,
within a loose accuracy envelope, consistent with the persistent-memory
floor).  Small batch sizes keep the sweep fast.
"""

import pytest

from repro.core.estimator import XMemEstimator
from repro.framework.optim import make_optimizer
from repro.models.registry import get_model_spec, list_models
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.units import GiB
from repro.workload import DeviceSpec, WorkloadConfig

BIG_DEVICE = DeviceSpec(
    name="sweep", capacity_bytes=64 * GiB, framework_bytes=512 * 1024 * 1024
)

# CNN batches large enough that peaks dwarf the 20 MiB segment
# granularity (the paper's CNN grid starts at 200 for the same reason)
SWEEP_BATCH = {"cnn": 64, "transformer": 2}


@pytest.mark.parametrize(
    "name", [spec.name for spec in list_models()]
)
def test_zoo_estimate_tracks_ground_truth(name):
    spec = get_model_spec(name)
    batch = SWEEP_BATCH[spec.family]
    workload = WorkloadConfig(name, "adamw", batch)
    estimate = XMemEstimator(iterations=2).estimate(workload, BIG_DEVICE)
    truth = run_gpu_ground_truth(
        name, batch, "adamw",
        capacity_bytes=BIG_DEVICE.job_budget(), seed=31,
    )
    assert not truth.oom
    assert estimate.peak_bytes > 0
    error = abs(estimate.peak_bytes - truth.measured_peak) / truth.measured_peak
    assert error < 0.20, (
        f"{name}: estimate {estimate.peak_bytes} vs truth "
        f"{truth.measured_peak} ({error * 100:.1f}% off)"
    )
    # the estimate can never undercut the persistent floor:
    # weights + gradients + optimizer state
    model = spec.build()
    optimizer = make_optimizer("adamw")
    params = model.parameter_bytes()
    states = optimizer.total_state_bytes([p.meta for p in model.parameters()])
    assert estimate.peak_bytes >= params * 2 + states
