"""Asyncio driver: the same sans-IO core on an event-loop substrate.

Everything policy-level (middleware onion, cache, single-flight,
routing, shed accounting) is shared with the thread driver through
:mod:`repro.service.core`; these tests pin that the asyncio driver
executes it faithfully — byte-identical results, identical counters,
graceful drain — without pytest-asyncio (each test drives its own
``asyncio.run``).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.estimator import XMemEstimator
from repro.errors import (
    DeadlineExceededError,
    EstimationError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from repro.service import (
    AsyncEstimationService,
    AsyncServiceGateway,
    EstimationService,
    RateLimitMiddleware,
    ServiceGateway,
    SyntheticEstimator,
    ValidationMiddleware,
    default_middlewares,
    generate_traffic,
    replay,
    replay_async,
)
from repro.service.cache import EstimateCache
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV2", "sgd", 8)
OTHER = WorkloadConfig("MobileNetV2", "adam", 16)


class GatedSyntheticEstimator(SyntheticEstimator):
    """Blocks every estimate on a (threading) event — the estimator runs
    on the driver's executor threads, so a thread gate works for both."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()

    def estimate(self, workload, device):
        assert self.gate.wait(timeout=10), "gate never opened"
        return super().estimate(workload, device)


class TestAsyncService:
    def test_results_byte_identical_to_direct_and_thread_driver(self):
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 8)
        direct = XMemEstimator(iterations=1).estimate(workload, RTX_3060)
        with EstimationService(
            estimator=XMemEstimator(iterations=1)
        ) as threaded_service:
            threaded = threaded_service.estimate(workload, RTX_3060)

        async def main():
            async with AsyncEstimationService(
                estimator=XMemEstimator(iterations=1)
            ) as service:
                return await service.estimate(workload, RTX_3060)

        evented = asyncio.run(main())
        for served in (threaded, evented):
            assert served.peak_bytes == direct.peak_bytes
            assert served.detail == direct.detail
            assert served.predicts_oom() == direct.predicts_oom()

    def test_single_flight_dedup_costs_one_estimation(self):
        async def main():
            estimator = SyntheticEstimator(work_seconds=0.005)
            async with AsyncEstimationService(estimator=estimator) as service:
                futures = [
                    service.submit(WORKLOAD, RTX_3060) for _ in range(16)
                ]
                # each caller owns its future (cancellation isolation),
                # but all of them mirror one shared estimation
                assert len(set(map(id, futures))) == 16
                results = await asyncio.gather(*futures)
                stats = service.stats()["service"]
            assert estimator.calls == 1
            assert all(result is results[0] for result in results)
            assert stats["requests"] == 16
            assert stats["computed"] == 1
            assert stats["deduplicated"] == 15

        asyncio.run(main())

    def test_cancelling_one_caller_does_not_poison_duplicates(self):
        # regression: asyncio futures are cancellable (wait_for cancels
        # on timeout) — one impatient caller must not discard the shared
        # estimation the other piggybackers are still waiting on
        async def main():
            estimator = GatedSyntheticEstimator()
            service = AsyncEstimationService(estimator=estimator)
            patient = service.submit(WORKLOAD, RTX_3060)
            impatient = service.submit(WORKLOAD, RTX_3060)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(impatient, timeout=0.05)
            estimator.gate.set()
            result = await patient  # survived the sibling's cancellation
            assert result.peak_bytes > 0
            assert estimator.calls == 1
            await service.aclose()

        asyncio.run(main())

    def test_cache_hit_answers_on_the_loop(self):
        async def main():
            estimator = SyntheticEstimator()
            async with AsyncEstimationService(estimator=estimator) as service:
                first = await service.estimate(WORKLOAD, RTX_3060)
                second = await service.estimate(WORKLOAD, RTX_3060)
                stats = service.stats()
            assert estimator.calls == 1
            assert second is first  # literally the cached object
            assert stats["service"]["cache_hits"] == 1
            assert stats["cache"]["hits"] == 1

        asyncio.run(main())

    def test_estimator_failure_shares_one_exception_and_releases_slot(self):
        class FailingEstimator(SyntheticEstimator):
            def estimate(self, workload, device):
                super().estimate(workload, device)
                raise EstimationError("boom")

        async def main():
            estimator = FailingEstimator()
            async with AsyncEstimationService(estimator=estimator) as service:
                futures = [
                    service.submit(WORKLOAD, RTX_3060) for _ in range(4)
                ]
                outcomes = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                assert all(o is outcomes[0] for o in outcomes)
                assert isinstance(outcomes[0], EstimationError)
                # the single-flight slot was released: a retry re-estimates
                assert len(service.core.inflight) == 0
                assert estimator.calls == 1

        asyncio.run(main())

    def test_validation_rejects_synchronously(self):
        async def main():
            async with AsyncEstimationService(
                estimator=SyntheticEstimator(),
                middlewares=(ValidationMiddleware(),),
            ) as service:
                with pytest.raises(RequestRejectedError):
                    service.submit(
                        WorkloadConfig("no-such-model", "sgd", 8), RTX_3060
                    )
                assert service.stats()["service"]["rejected"] == 1

        asyncio.run(main())

    def test_rate_limit_throttles_without_a_bound_lock(self):
        async def main():
            middleware = RateLimitMiddleware(
                rate_per_second=1, burst=1, clock=lambda: 0.0
            )
            async with AsyncEstimationService(
                estimator=SyntheticEstimator(), middlewares=(middleware,)
            ) as service:
                await service.estimate(WORKLOAD, RTX_3060)
                with pytest.raises(RateLimitExceededError):
                    service.submit(WORKLOAD, RTX_3060)
                assert service.stats()["service"]["throttled"] == 1

        asyncio.run(main())

    def test_expired_deadline_is_rejected_before_any_work(self):
        async def main():
            estimator = SyntheticEstimator()
            async with AsyncEstimationService(estimator=estimator) as service:
                with pytest.raises(DeadlineExceededError):
                    service.submit(WORKLOAD, RTX_3060, deadline=0.0)
                assert estimator.calls == 0
                assert service.stats()["service"]["rejected"] == 1

        asyncio.run(main())

    def test_expired_deadline_never_piggybacks_on_inflight_duplicates(self):
        # regression: the dedup fast path must not outrank the deadline
        # check — an expired caller is rejected even when an identical
        # request is in flight (both drivers)
        async def main():
            estimator = GatedSyntheticEstimator()
            service = AsyncEstimationService(estimator=estimator)
            leader = service.submit(WORKLOAD, RTX_3060)
            with pytest.raises(DeadlineExceededError):
                service.submit(WORKLOAD, RTX_3060, deadline=0.0)
            stats = service.stats()["service"]
            assert stats["rejected"] == 1
            assert stats["deduplicated"] == 0
            estimator.gate.set()
            assert (await leader).peak_bytes > 0
            await service.aclose()

        asyncio.run(main())

        gate = threading.Event()
        estimator = SyntheticEstimator()
        original = estimator.estimate
        estimator.estimate = lambda w, d: (
            gate.wait(timeout=10),
            original(w, d),
        )[1]
        with EstimationService(estimator=estimator) as service:
            leader = service.submit(WORKLOAD, RTX_3060)
            with pytest.raises(DeadlineExceededError):
                service.submit(WORKLOAD, RTX_3060, deadline=0.0)
            stats = service.stats()["service"]
            assert stats["rejected"] == 1
            assert stats["deduplicated"] == 0
            gate.set()
            assert leader.result(timeout=10).peak_bytes > 0

    def test_deadline_middleware_budget_rejects_before_dispatch(self):
        # regression: a budget stamped *by* a hook must be enforced by
        # the core's post-chain check — the estimator is never invoked
        from repro.service import DeadlineMiddleware

        async def main():
            estimator = SyntheticEstimator()
            async with AsyncEstimationService(
                estimator=estimator,
                middlewares=(DeadlineMiddleware(budget_seconds=1e-9),),
            ) as service:
                with pytest.raises(DeadlineExceededError):
                    service.submit(WORKLOAD, RTX_3060)
                assert estimator.calls == 0
                assert service.stats()["service"]["rejected"] == 1

            # through a gateway the miss is a *rejection* in the fleet
            # counters too (DeadlineExceededError ⊂ RequestRejectedError)
            shard = AsyncEstimationService(
                estimator=SyntheticEstimator(),
                middlewares=(DeadlineMiddleware(budget_seconds=1e-9),),
            )
            gateway = AsyncServiceGateway(shards=[shard])
            with pytest.raises(DeadlineExceededError):
                gateway.submit(WORKLOAD, RTX_3060)
            stats = gateway.stats()["gateway"]
            assert stats["rejected"] == 1
            assert stats["pending"] == 0
            await gateway.aclose()

        asyncio.run(main())

        estimator = SyntheticEstimator()
        with EstimationService(
            estimator=estimator,
            middlewares=(DeadlineMiddleware(budget_seconds=1e-9),),
        ) as service:
            with pytest.raises(DeadlineExceededError):
                service.submit(WORKLOAD, RTX_3060)
            assert estimator.calls == 0
            assert service.stats()["service"]["rejected"] == 1

    def test_aclose_without_wait_does_not_block_on_inflight_work(self):
        # regression: aclose(wait=False) must return promptly even while
        # an estimate is stuck, mirroring the thread close(wait=False)
        async def main():
            estimator = GatedSyntheticEstimator()
            service = AsyncEstimationService(estimator=estimator)
            future = service.submit(WORKLOAD, RTX_3060)
            await asyncio.wait_for(service.aclose(wait=False), timeout=1)
            with pytest.raises(ServiceClosedError):
                service.submit(OTHER, RTX_3060)
            estimator.gate.set()  # let the stragglers finish cleanly
            assert (await future).peak_bytes > 0

        asyncio.run(main())

    def test_estimate_many_preserves_order_and_captures_errors(self):
        async def main():
            cache = EstimateCache()
            async with AsyncEstimationService(
                estimator=SyntheticEstimator(),
                middlewares=default_middlewares(cache),
                cache=cache,
            ) as service:
                requests = [
                    (WORKLOAD, RTX_3060),
                    (WorkloadConfig("no-such-model", "sgd", 8), RTX_3060),
                    (OTHER, RTX_4060),
                    (WORKLOAD, RTX_3060),  # duplicate: dedup or cache
                ]
                results = await service.estimate_many(
                    requests, return_exceptions=True
                )
            assert len(results) == 4
            assert isinstance(results[1], RequestRejectedError)
            assert results[0].peak_bytes == results[3].peak_bytes
            assert results[2].workload == OTHER

        asyncio.run(main())

    def test_drain_stops_intake_and_waits_for_inflight(self):
        async def main():
            estimator = GatedSyntheticEstimator()
            service = AsyncEstimationService(estimator=estimator)
            future = service.submit(WORKLOAD, RTX_3060)
            drain_task = asyncio.ensure_future(service.drain(timeout=10))
            await asyncio.sleep(0.05)
            assert not drain_task.done()  # estimate still gated
            with pytest.raises(ServiceClosedError):
                service.submit(OTHER, RTX_3060)  # intake already closed
            estimator.gate.set()
            assert await drain_task is True
            result = await future  # the in-flight request was not lost
            assert result.peak_bytes > 0
            await service.aclose()
            await service.aclose()  # idempotent

        asyncio.run(main())


class TestAsyncGateway:
    def test_repeats_route_to_the_same_shard_and_hit_cache(self):
        async def main():
            estimators = []

            def factory():
                estimator = SyntheticEstimator()
                estimators.append(estimator)
                return estimator

            async with AsyncServiceGateway(
                num_shards=4, estimator_factory=factory
            ) as gateway:
                for _ in range(6):
                    await gateway.estimate(WORKLOAD, RTX_3060)
                stats = gateway.stats()
            assert sum(e.calls for e in estimators) == 1
            assert stats["aggregate"]["cache_hits"] == 5
            routed = stats["gateway"]["routed_per_shard"]
            assert sorted(routed) == [0, 0, 0, 6]

        asyncio.run(main())

    def test_full_queue_sheds_and_drain_does_not_double_count(self):
        async def main():
            estimator = GatedSyntheticEstimator()
            shard = AsyncEstimationService(estimator=estimator, max_workers=2)
            gateway = AsyncServiceGateway(shards=[shard], max_queue_depth=2)
            first = gateway.submit(WORKLOAD, RTX_3060)
            second = gateway.submit(OTHER, RTX_3060)
            with pytest.raises(RateLimitExceededError) as info:
                gateway.submit(WorkloadConfig("MobileNetV2", "sgd", 32), RTX_3060)
            assert info.value.retry_after_seconds > 0
            assert gateway.stats()["gateway"]["shed"] == 1
            drain_task = asyncio.ensure_future(gateway.drain(timeout=10))
            await asyncio.sleep(0.05)
            assert not drain_task.done()
            estimator.gate.set()
            assert await drain_task is True
            # no lost results: both admitted futures resolve
            results = await asyncio.gather(first, second)
            assert all(r.peak_bytes > 0 for r in results)
            stats = gateway.stats()["gateway"]
            assert stats["shed"] == 1  # drain did not double-shed
            assert stats["pending"] == 0
            with pytest.raises(ServiceClosedError):
                gateway.submit(WORKLOAD, RTX_3060)
            await gateway.aclose()
            await gateway.aclose()  # idempotent

        asyncio.run(main())

    def test_drain_times_out_while_work_is_stuck(self):
        async def main():
            estimator = GatedSyntheticEstimator()
            shard = AsyncEstimationService(estimator=estimator)
            gateway = AsyncServiceGateway(shards=[shard])
            gateway.submit(WORKLOAD, RTX_3060)
            assert await gateway.drain(timeout=0.05) is False
            estimator.gate.set()
            assert await gateway.drain(timeout=10) is True
            await gateway.aclose()

        asyncio.run(main())

    def test_replay_matches_thread_driver_accounting(self):
        for scenario in ("uniform", "adversarial"):
            trace = generate_traffic(scenario, 120, seed=7)
            with ServiceGateway(
                num_shards=2, estimator_factory=SyntheticEstimator
            ) as gateway:
                threaded = replay(trace, gateway)

            async def main():
                async with AsyncServiceGateway(
                    num_shards=2, estimator_factory=SyntheticEstimator
                ) as gateway:
                    return await replay_async(trace, gateway)

            evented = asyncio.run(main())
            assert evented.answered == threaded.answered
            assert evented.rejected == threaded.rejected
            assert evented.shed == threaded.shed == 0
            assert evented.errors == threaded.errors == 0


class TestAdmissionControllerAsync:
    def test_decide_async_matches_blocking_path(self):
        from repro.cluster import ServiceAdmissionController

        workloads = [
            WorkloadConfig("MobileNetV2", "sgd", 8),
            WorkloadConfig("no-such-model", "sgd", 8),
        ]
        with EstimationService(estimator=SyntheticEstimator()) as service:
            controller = ServiceAdmissionController(
                service, devices=[RTX_3060]
            )
            blocking = [controller.decide(w) for w in workloads]

        async def main():
            async with AsyncEstimationService(
                estimator=SyntheticEstimator()
            ) as service:
                controller = ServiceAdmissionController(
                    service, devices=[RTX_3060]
                )
                return [
                    await controller.decide_async(w) for w in workloads
                ]

        evented = asyncio.run(main())
        assert [d.admitted for d in evented] == [
            d.admitted for d in blocking
        ]
        assert [d.reserved_bytes for d in evented] == [
            d.reserved_bytes for d in blocking
        ]

    def test_simulate_async_runs_the_full_path(self):
        from repro.cluster import ServiceAdmissionController

        async def main():
            async with AsyncEstimationService(
                estimator=SyntheticEstimator()
            ) as service:
                controller = ServiceAdmissionController(
                    service, devices=[RTX_3060]
                )
                outcome, decisions = await controller.simulate_async(
                    [(WORKLOAD, 1 << 30), (OTHER, 1 << 30)]
                )
            assert len(decisions) == 2
            assert outcome.completed == sum(
                1 for d in decisions if d.admitted
            )

        asyncio.run(main())
