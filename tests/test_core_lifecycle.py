"""Lifecycle reconstruction (paper §3.2) + property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lifecycle import (
    MemoryBlock,
    peak_live_bytes,
    reconstruct_lifecycles,
)
from repro.errors import LifecycleError
from repro.trace.events import MemoryEvent


def ev(ts, addr, nbytes):
    return MemoryEvent(ts=ts, addr=addr, nbytes=nbytes)


class TestReconstruction:
    def test_simple_pairing(self):
        report = reconstruct_lifecycles(
            [ev(1, 0x10, 100), ev(5, 0x10, -100)]
        )
        (block,) = report.blocks
        assert (block.alloc_ts, block.free_ts, block.size) == (1, 5, 100)

    def test_persistent_block(self):
        report = reconstruct_lifecycles([ev(1, 0x10, 100)])
        assert report.blocks[0].persistent

    def test_address_reuse(self):
        """§3.2: address reuse must yield two distinct lifecycles."""
        events = [
            ev(1, 0x10, 100),
            ev(2, 0x10, -100),
            ev(3, 0x10, 400),  # same address, new block, new size
            ev(4, 0x10, -400),
        ]
        report = reconstruct_lifecycles(events)
        assert len(report.blocks) == 2
        assert report.reused_addresses == 1
        sizes = sorted(b.size for b in report.blocks)
        assert sizes == [100, 400]

    def test_unmatched_free_tolerated(self):
        report = reconstruct_lifecycles([ev(1, 0x99, -64)])
        assert report.unmatched_frees == 1
        assert not report.blocks

    def test_unmatched_free_strict(self):
        with pytest.raises(LifecycleError):
            reconstruct_lifecycles([ev(1, 0x99, -64)], strict=True)

    def test_double_alloc_tolerated(self):
        events = [ev(1, 0x10, 100), ev(2, 0x10, 200)]
        report = reconstruct_lifecycles(events)
        # the phantom first block is closed at the second alloc
        assert len(report.blocks) == 2

    def test_double_alloc_strict(self):
        with pytest.raises(LifecycleError):
            reconstruct_lifecycles(
                [ev(1, 0x10, 100), ev(2, 0x10, 200)], strict=True
            )

    def test_out_of_order_rejected(self):
        with pytest.raises(LifecycleError):
            reconstruct_lifecycles([ev(5, 1, 10), ev(1, 2, 10)])

    def test_blocks_sorted_by_alloc_ts(self):
        events = [
            ev(1, 0x20, 50),
            ev(2, 0x30, 60),
            ev(3, 0x20, -50),
            ev(4, 0x30, -60),
        ]
        report = reconstruct_lifecycles(events)
        assert [b.alloc_ts for b in report.blocks] == [1, 2]


class TestBlockQueries:
    def test_lifespan_within(self):
        block = MemoryBlock(addr=1, size=10, alloc_ts=5, free_ts=10)
        assert block.lifespan_within(0, 20)
        assert not block.lifespan_within(6, 20)
        assert not MemoryBlock(addr=1, size=10, alloc_ts=5).lifespan_within(0, 20)

    def test_overlaps(self):
        block = MemoryBlock(addr=1, size=10, alloc_ts=5, free_ts=10)
        assert block.overlaps(0, 6)
        assert block.overlaps(7, 8)
        assert not block.overlaps(11, 20)

    def test_with_free_ts_keeps_id(self):
        block = MemoryBlock(addr=1, size=10, alloc_ts=5, free_ts=10)
        adjusted = block.with_free_ts(None)
        assert adjusted.block_id == block.block_id
        assert adjusted.persistent


class TestPeakLiveBytes:
    def test_sequential(self):
        blocks = [
            MemoryBlock(addr=1, size=100, alloc_ts=0, free_ts=10),
            MemoryBlock(addr=2, size=200, alloc_ts=20, free_ts=30),
        ]
        assert peak_live_bytes(blocks) == 200

    def test_overlapping(self):
        blocks = [
            MemoryBlock(addr=1, size=100, alloc_ts=0, free_ts=10),
            MemoryBlock(addr=2, size=200, alloc_ts=5, free_ts=30),
        ]
        assert peak_live_bytes(blocks) == 300

    def test_free_before_alloc_at_same_ts(self):
        """A free and an alloc at the same instant do not stack."""
        blocks = [
            MemoryBlock(addr=1, size=100, alloc_ts=0, free_ts=5),
            MemoryBlock(addr=2, size=100, alloc_ts=5, free_ts=9),
        ]
        assert peak_live_bytes(blocks) == 100

    def test_persistent_counts_forever(self):
        blocks = [
            MemoryBlock(addr=1, size=100, alloc_ts=0),
            MemoryBlock(addr=2, size=50, alloc_ts=99, free_ts=100),
        ]
        assert peak_live_bytes(blocks) == 150

    def test_empty(self):
        assert peak_live_bytes([]) == 0


# ---------------------------------------------------------------------
# property: reconstruction inverts a random valid event generation
# ---------------------------------------------------------------------
@st.composite
def block_plans(draw):
    """Random (alloc_ts, free_ts|None, size) plans with disjoint addrs."""
    count = draw(st.integers(1, 25))
    plans = []
    for index in range(count):
        alloc_ts = draw(st.integers(0, 1000))
        lives = draw(st.booleans())
        free_ts = draw(st.integers(alloc_ts + 1, 1100)) if lives else None
        size = draw(st.integers(1, 10**6))
        plans.append((alloc_ts, free_ts, size, 0x1000 + index * 0x100))
    return plans


@settings(max_examples=60, deadline=None)
@given(plans=block_plans())
def test_reconstruction_inverts_generation(plans):
    events = []
    for alloc_ts, free_ts, size, addr in plans:
        events.append(MemoryEvent(ts=alloc_ts, addr=addr, nbytes=size))
        if free_ts is not None:
            events.append(MemoryEvent(ts=free_ts, addr=addr, nbytes=-size))
    events.sort(key=lambda e: e.ts)
    report = reconstruct_lifecycles(events)
    assert len(report.blocks) == len(plans)
    recovered = {
        (b.addr, b.alloc_ts, b.free_ts, b.size) for b in report.blocks
    }
    expected = {
        (addr, alloc_ts, free_ts, size)
        for alloc_ts, free_ts, size, addr in plans
    }
    assert recovered == expected


@settings(max_examples=60, deadline=None)
@given(plans=block_plans())
def test_peak_never_below_any_single_block(plans):
    blocks = [
        MemoryBlock(addr=addr, size=size, alloc_ts=a, free_ts=f)
        for a, f, size, addr in plans
    ]
    peak = peak_live_bytes(blocks)
    assert peak >= max(b.size for b in blocks)
    assert peak <= sum(b.size for b in blocks)
