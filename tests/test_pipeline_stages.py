"""Stage-cache correctness: golden equivalence, invalidation, fast paths.

The staged pipeline (:mod:`repro.core.pipeline`) must be invisible in the
numbers: a stage-cached estimate is byte-identical to a cold run, and any
knob that feeds a stage — profiling iterations, the rule set, the
allocator configuration — must invalidate exactly the artifacts derived
from it, nothing less.
"""

from dataclasses import replace

import pytest

from repro.allocator.constants import DEFAULT_CONFIG
from repro.core.estimator import XMemEstimator
from repro.core.pipeline import (
    ANALYZE,
    ORCHESTRATE,
    PROFILE,
    SIMULATE,
    EstimationPipeline,
    PipelineCache,
    trace_fingerprint,
)
from repro.core.simulator import MemorySimulator
from repro.runtime.profiler import profile_on_cpu
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

from tests.conftest import tiny_spec

WORKLOAD = WorkloadConfig("MobileNetV3Small", "sgd", 4)


def make_estimator(stage_cache=True, **knobs) -> XMemEstimator:
    return XMemEstimator(iterations=2, stage_cache=stage_cache, **knobs)


class TestGoldenEquivalence:
    """Stage-cached estimates == cold estimates, across every knob."""

    @pytest.mark.parametrize(
        "knobs",
        [
            {},
            {"orchestrate": False},
            {"two_level": False},
            {"account": "tensor"},
            {"allocator_config": replace(DEFAULT_CONFIG, allow_split=False)},
        ],
        ids=["default", "no_orchestrator", "single_level", "tensor",
             "no_split"],
    )
    def test_warm_estimate_is_byte_identical(self, knobs):
        cold = make_estimator(stage_cache=False, **knobs).estimate(
            WORKLOAD, RTX_3060
        )
        warm_estimator = make_estimator(**knobs)
        first = warm_estimator.estimate(WORKLOAD, RTX_3060)
        second = warm_estimator.estimate(WORKLOAD, RTX_3060)  # fully warm
        assert first.peak_bytes == cold.peak_bytes == second.peak_bytes
        assert first.detail == cold.detail == second.detail
        assert second.stage_cached == {
            PROFILE: True,
            ANALYZE: True,
            ORCHESTRATE: True,
            SIMULATE: False,
        }

    @pytest.mark.parametrize(
        "model,optimizer", [("MobileNetV3Small", "adam"), ("MnasNet", "sgd")]
    )
    def test_across_models(self, model, optimizer):
        workload = WorkloadConfig(model, optimizer, 4)
        cold = make_estimator(stage_cache=False).estimate(workload, RTX_3060)
        estimator = make_estimator()
        estimator.estimate(workload, RTX_3060)
        warm = estimator.estimate(workload, RTX_3060)
        assert warm.peak_bytes == cold.peak_bytes
        assert warm.detail == cold.detail

    def test_curve_fast_path_same_peaks(self):
        with_curve = make_estimator().estimate(WORKLOAD, RTX_3060)
        without = make_estimator(curve=False).estimate(WORKLOAD, RTX_3060)
        assert without.curve is None
        assert with_curve.curve is not None
        assert without.peak_bytes == with_curve.peak_bytes
        assert without.detail == with_curve.detail


class TestUpstreamReuse:
    """Requests differing only in simulation knobs re-run only simulate."""

    def test_allocator_ablation_reuses_trace_and_sequence(self):
        cache = PipelineCache()
        default = make_estimator(stage_cache=cache)
        no_split = make_estimator(
            stage_cache=cache,
            allocator_config=replace(DEFAULT_CONFIG, allow_split=False),
        )
        default.estimate(WORKLOAD, RTX_3060)
        ablated = no_split.estimate(WORKLOAD, RTX_3060)
        assert ablated.stage_cached[PROFILE]
        assert ablated.stage_cached[ANALYZE]
        assert ablated.stage_cached[ORCHESTRATE]
        assert not ablated.stage_cached[SIMULATE]
        assert cache.traces.stats()["misses"] == 1
        assert cache.sequences.stats()["misses"] == 1

    def test_two_level_ablation_reuses_upstream(self):
        cache = PipelineCache()
        make_estimator(stage_cache=cache).estimate(WORKLOAD, RTX_3060)
        single = make_estimator(
            stage_cache=cache, two_level=False
        ).estimate(WORKLOAD, RTX_3060)
        assert single.stage_cached[ORCHESTRATE]
        assert cache.traces.stats()["misses"] == 1
        # the knob still took effect downstream of the shared artifacts
        cold = make_estimator(
            stage_cache=False, two_level=False
        ).estimate(WORKLOAD, RTX_3060)
        assert single.peak_bytes == cold.peak_bytes

    def test_device_change_reuses_everything_upstream(self):
        estimator = make_estimator()
        first = estimator.estimate(WORKLOAD, RTX_3060)
        other = estimator.estimate(WORKLOAD, RTX_4060)
        assert other.stage_cached[PROFILE]
        assert other.stage_cached[ANALYZE]
        assert other.stage_cached[ORCHESTRATE]
        # the simulation is device-independent; only the OOM verdict moves
        assert other.peak_bytes == first.peak_bytes


class TestInvalidation:
    """Changed upstream knobs must never serve stale downstream artifacts."""

    def test_rule_set_invalidates_sequences_not_traces(self):
        cache = PipelineCache()
        full = make_estimator(stage_cache=cache)
        raw = make_estimator(stage_cache=cache, orchestrate=False)
        orchestrated = full.estimate(WORKLOAD, RTX_3060)
        unorchestrated = raw.estimate(WORKLOAD, RTX_3060)
        # trace + analysis shared, sequence recomputed per rule set
        assert cache.traces.stats()["misses"] == 1
        assert cache.analyses.stats()["misses"] == 1
        assert cache.sequences.stats()["misses"] == 2
        assert unorchestrated.detail["rule_adjustments"] == {}
        assert orchestrated.detail["rule_adjustments"] != {}
        cold = make_estimator(
            stage_cache=False, orchestrate=False
        ).estimate(WORKLOAD, RTX_3060)
        assert unorchestrated.peak_bytes == cold.peak_bytes
        assert unorchestrated.detail == cold.detail

    def test_iterations_invalidate_the_profile(self):
        cache = PipelineCache()
        make_estimator(stage_cache=cache).estimate(WORKLOAD, RTX_3060)
        three = XMemEstimator(iterations=3, stage_cache=cache).estimate(
            WORKLOAD, RTX_3060
        )
        assert cache.traces.stats()["misses"] == 2
        cold = XMemEstimator(iterations=3, stage_cache=False).estimate(
            WORKLOAD, RTX_3060
        )
        assert three.peak_bytes == cold.peak_bytes
        assert three.detail == cold.detail

    def test_batch_size_invalidates_the_profile(self):
        cache = PipelineCache()
        estimator = make_estimator(stage_cache=cache)
        small = estimator.estimate(WORKLOAD, RTX_3060)
        large = estimator.estimate(
            WORKLOAD.with_batch_size(16), RTX_3060
        )
        assert cache.traces.stats()["misses"] == 2
        assert large.peak_bytes != small.peak_bytes


class TestTraceFingerprint:
    """Supplied traces are content-addressed, not identity-addressed."""

    def test_identical_profiles_share_a_fingerprint(self):
        first = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        second = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        assert first is not second
        assert trace_fingerprint(first) == trace_fingerprint(second)

    def test_different_workloads_differ(self):
        first = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        second = profile_on_cpu(tiny_spec(), batch_size=8, optimizer="sgd")
        assert trace_fingerprint(first) != trace_fingerprint(second)

    def test_fingerprint_is_memoized(self):
        trace = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        assert trace_fingerprint(trace) is trace_fingerprint(trace)

    def test_supplied_twin_trace_hits_the_analysis_cache(self):
        workload = WorkloadConfig("TinyConvNet", "sgd", 4)
        first = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        second = profile_on_cpu(tiny_spec(), batch_size=4, optimizer="sgd")
        estimator = make_estimator()
        estimator.estimate(workload, RTX_3060, trace=first)
        warm = estimator.estimate(workload, RTX_3060, trace=second)
        assert warm.stage_cached[ANALYZE]
        assert warm.stage_cached[ORCHESTRATE]
        assert estimator.stage_cache.analyses.stats()["hits"] == 1


class TestReplayCore:
    def test_event_stream_matches_events(self, tiny_trace):
        pipeline = EstimationPipeline(iterations=3)
        sequence = pipeline.orchestrate(pipeline.analyze(tiny_trace))
        stream = sequence.event_stream()
        assert len(stream) == len(sequence.events)
        for flat, event in zip(stream, sequence.events):
            assert flat == (
                event.ts,
                event.kind.value == "alloc",
                event.block_id,
                event.size,
            )
        assert sequence.event_stream() is stream  # cached

    def test_replay_without_timeline_matches_peaks(self, tiny_trace):
        pipeline = EstimationPipeline(iterations=3)
        sequence = pipeline.orchestrate(pipeline.analyze(tiny_trace))
        recorded = MemorySimulator().replay(sequence)
        fast = MemorySimulator().replay(sequence, record_timeline=False)
        assert fast.peak_reserved_bytes == recorded.peak_reserved_bytes
        assert fast.peak_allocated_bytes == recorded.peak_allocated_bytes
        assert fast.num_events == recorded.num_events
        assert len(fast.timeline) == 0
        assert len(recorded.timeline) > 0

    def test_bounded_timeline_replay_keeps_exact_peaks(self, tiny_trace):
        pipeline = EstimationPipeline(iterations=3)
        sequence = pipeline.orchestrate(pipeline.analyze(tiny_trace))
        reference = MemorySimulator().replay(sequence)
        bounded = MemorySimulator(timeline_max_points=32).replay(sequence)
        assert bounded.peak_reserved_bytes == reference.peak_reserved_bytes
        assert len(bounded.timeline) <= 64
        assert (
            bounded.timeline.peak_reserved()
            == reference.timeline.peak_reserved()
        )


class TestPipelineCacheStore:
    def test_capacity_zero_disables_storage(self):
        cache = PipelineCache(max_traces=0)
        calls = []
        value, hit = cache.traces.get_or_compute(
            "k", lambda: calls.append(1) or "v"
        )
        assert (value, hit) == ("v", False)
        value, hit = cache.traces.get_or_compute(
            "k", lambda: calls.append(1) or "v"
        )
        assert (value, hit) == ("v", False)
        assert len(calls) == 2

    def test_lru_eviction_order(self):
        cache = PipelineCache(max_traces=2)
        store = cache.traces
        store.get_or_compute("a", lambda: 1)
        store.get_or_compute("b", lambda: 2)
        store.get_or_compute("a", lambda: 1)  # refresh a
        store.get_or_compute("c", lambda: 3)  # evicts b
        assert store.get_or_compute("a", lambda: 99) == (1, True)
        assert store.get_or_compute("b", lambda: 42) == (42, False)
        assert store.stats()["evictions"] >= 1

    def test_build_failure_propagates_and_releases_the_key(self):
        cache = PipelineCache()

        def boom():
            raise RuntimeError("profile failed")

        with pytest.raises(RuntimeError):
            cache.traces.get_or_compute("k", boom)
        value, hit = cache.traces.get_or_compute("k", lambda: "ok")
        assert (value, hit) == ("ok", False)

    def test_clear(self):
        cache = PipelineCache()
        cache.traces.get_or_compute("k", lambda: 1)
        cache.clear()
        assert cache.traces.stats()["size"] == 0

    def test_concurrent_misses_build_once(self):
        import threading

        cache = PipelineCache()
        calls = []
        gate = threading.Barrier(4)

        def build():
            calls.append(1)
            return "artifact"

        def worker(results, index):
            gate.wait()
            results[index] = cache.traces.get_or_compute("k", build)

        results: dict[int, tuple] = {}
        threads = [
            threading.Thread(target=worker, args=(results, i))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(value == "artifact" for value, _ in results.values())
        assert sum(1 for _, hit in results.values() if not hit) == 1


class TestServiceIntegration:
    def test_service_metrics_report_stage_timings(self):
        from repro.service import EstimationService

        with EstimationService(estimator=make_estimator()) as service:
            service.estimate(WORKLOAD, RTX_3060)
            service.estimate(WORKLOAD, RTX_3060)  # cache hit: no stages
            stats = service.stats()
        stages = stats["service"]["stages"]
        assert set(stages) == {"profile", "analyze", "orchestrate", "simulate"}
        for data in stages.values():
            assert data["count"] == 1  # only the computed request reported
            assert data["total_seconds"] >= 0.0

    def test_gateway_aggregates_stage_timings(self):
        from repro.service import ServiceGateway

        with ServiceGateway(
            num_shards=2, estimator_factory=make_estimator
        ) as gateway:
            gateway.estimate(WORKLOAD, RTX_3060)
            gateway.estimate(WORKLOAD.with_batch_size(8), RTX_3060)
            stats = gateway.stats()
        stages = stats["aggregate"]["stages"]
        assert set(stages) == {"profile", "analyze", "orchestrate", "simulate"}
        assert sum(data["count"] for data in stages.values()) == 8

    def test_estimate_many_shares_the_stage_cache_profile(self):
        from repro.service import EstimationService, estimate_many

        estimator = make_estimator()
        with EstimationService(estimator=estimator) as service:
            requests = [
                (WORKLOAD, RTX_3060),
                (WORKLOAD, RTX_4060),
                (WORKLOAD, replace(RTX_4060, init_bytes=1 << 30)),
            ]
            results = estimate_many(service, requests)
        assert len({r.peak_bytes for r in results}) == 1
        # one workload, many devices: exactly one CPU profile happened
        assert estimator.stage_cache.traces.stats()["misses"] == 1
