"""The multi-tenant control plane: quotas, fair share, QoS, auth shim.

Property tests pin the token-bucket edge cases (zero capacity, exact
refill boundary, clock skew) and the determinism claim the cross-driver
benchmark rides on: the same admission request sequence against two
freshly built planes produces the identical decision sequence.  Unit
tests cover the decision order (hopeless deadline before auth before
quota before fair share), the QoS reserve, the gateway integration
(counters, ledger events, snapshots), and the auth shim's authn/authz
split.
"""

from __future__ import annotations

import time

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    DeadlineExceededError,
    QuotaExceededError,
    RateLimitExceededError,
)
from repro.service import (
    DEFAULT_PRIORITY,
    QOS_CLASSES,
    AuthShimMiddleware,
    ControlPlane,
    EstimationService,
    ServiceGateway,
    SyntheticEstimator,
    Telemetry,
    TenantConfig,
    TenantGrant,
    TokenBucket,
    generate_traffic,
    make_control,
    qos_class,
    qos_priority,
    replay,
    tenant_configs,
)
from repro.service.context import ServiceRequest
from repro.service.wire import error_from_wire, error_to_wire
from repro.workload import RTX_3060, WorkloadConfig

WORKLOAD = WorkloadConfig(model="MobileNetV3Small", optimizer="sgd", batch_size=8)


# ----------------------------------------------------------------------
# QoS classes
# ----------------------------------------------------------------------


class TestQosClasses:
    def test_names_round_trip(self):
        for name, priority in QOS_CLASSES.items():
            assert qos_class(priority) == name
            assert qos_priority(name) == priority

    def test_unknown_priority_clamps_to_batch(self):
        assert qos_class(99) == "batch"
        assert qos_class(-3) == "interactive"

    def test_unknown_class_name_raises(self):
        with pytest.raises(ValueError, match="interactive"):
            qos_priority("platinum")


# ----------------------------------------------------------------------
# token bucket properties
# ----------------------------------------------------------------------

rates = st.floats(
    min_value=0.001, max_value=1000.0, allow_nan=False, allow_infinity=False
)


class TestTokenBucketProperties:
    @settings(max_examples=120, deadline=None)
    @given(rate=rates, steps=st.lists(rates, min_size=1, max_size=20))
    def test_zero_capacity_never_grants(self, rate, steps):
        bucket = TokenBucket(0.0, rate)
        now = 0.0
        for step in steps:
            now += step
            bucket.refill(now)
            assert not bucket.peek()
            assert bucket.tokens == 0.0

    @settings(max_examples=120, deadline=None)
    @given(rate=rates)
    def test_exact_refill_boundary_grants_again(self, rate):
        bucket = TokenBucket(1.0, rate)
        bucket.take()
        assert not bucket.peek()
        bucket.refill(1.0 / rate)  # exactly cost/rate later: >=, not >
        assert bucket.peek()

    @settings(max_examples=120, deadline=None)
    @given(
        rate=rates,
        capacity=st.floats(min_value=1.0, max_value=100.0),
        jumps=st.lists(
            st.floats(
                min_value=-50.0,
                max_value=50.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_clock_skew_mints_nothing_and_caps_at_capacity(
        self, rate, capacity, jumps
    ):
        bucket = TokenBucket(capacity, rate)
        bucket.take()
        now = 0.0
        for jump in jumps:
            before = bucket.tokens
            now += jump
            bucket.refill(now)
            if jump <= 0:  # a backwards (or frozen) clock mints nothing
                assert bucket.tokens == before
            assert bucket.tokens <= capacity + 1e-9

    def test_deficit_time(self):
        bucket = TokenBucket(4.0, 0.5)
        assert bucket.deficit_time() == 0.0
        for _ in range(4):
            bucket.take()
        assert bucket.deficit_time() == pytest.approx(2.0)
        assert TokenBucket(0.0, 0.0).deficit_time() == float("inf")

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(-1.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)


# ----------------------------------------------------------------------
# control plane determinism + decision order
# ----------------------------------------------------------------------

ROSTER = (
    TenantConfig("gold", quota_rate=0.6, quota_burst=4.0, weight=3.0),
    TenantConfig("bronze", quota_rate=0.2, quota_burst=2.0, weight=1.0),
)


def _decide(plane: ControlPlane, calls) -> list[tuple]:
    outcomes = []
    for tenant, priority, deadline_remaining in calls:
        try:
            cause = plane.admit(
                tenant=tenant,
                priority=priority,
                deadline_remaining=deadline_remaining,
            )
            outcomes.append(("admitted", cause))
        except QuotaExceededError as error:
            outcomes.append(("denied", error.scope, error.tenant))
        except DeadlineExceededError:
            outcomes.append(("hopeless",))
        except AuthenticationError:
            outcomes.append(("unauthenticated",))
    return outcomes


admission_calls = st.lists(
    st.tuples(
        st.sampled_from(("gold", "bronze", "stranger")),
        st.sampled_from((0, 1, 2)),
        st.sampled_from((None, -0.5, 5.0)),
    ),
    min_size=1,
    max_size=80,
)


class TestControlPlaneProperties:
    @settings(max_examples=80, deadline=None)
    @given(calls=admission_calls)
    def test_same_sequence_same_decisions(self, calls):
        build = lambda: ControlPlane(  # noqa: E731 - local factory
            ROSTER,
            admit_rate=0.8,
            admit_burst=8.0,
            default_config=TenantConfig("guest", quota_rate=0.1),
        )
        assert _decide(build(), calls) == _decide(build(), calls)

    @settings(max_examples=80, deadline=None)
    @given(calls=admission_calls)
    def test_admitted_never_exceeds_quota_budget(self, calls):
        plane = ControlPlane(
            ROSTER, admit_rate=10.0, admit_burst=1000.0, strict=False,
            default_config=TenantConfig("guest", quota_rate=0.1),
        )
        _decide(plane, calls)
        snapshot = plane.snapshot()
        ticks = snapshot["tick"]
        for name, counters in snapshot["tenants"].items():
            config = next(
                (c for c in ROSTER if c.name == name),
                TenantConfig("guest", quota_rate=0.1),
            )
            budget = config.quota_burst + config.quota_rate * ticks
            assert counters["admitted"] <= budget + 1e-9, (name, counters)


class TestControlPlaneDecisions:
    def test_hopeless_deadline_sheds_before_spending_tokens(self):
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=0.0, quota_burst=2.0)],
            admit_rate=0.0,
            admit_burst=2.0,
        )
        with pytest.raises(DeadlineExceededError):
            plane.admit(tenant="t", deadline_remaining=0.0)
        # both admissions still succeed: the hopeless shed burned nothing
        plane.admit(tenant="t")
        plane.admit(tenant="t")
        snapshot = plane.snapshot()["tenants"]["t"]
        assert snapshot["hopeless_shed"] == 1
        assert snapshot["admitted"] == 2

    def test_strict_mode_refuses_unknown_tenants(self):
        plane = ControlPlane(ROSTER, strict=True)
        with pytest.raises(AuthenticationError):
            plane.admit(tenant="stranger")

    def test_no_default_also_refuses_unknown_tenants(self):
        plane = ControlPlane(ROSTER)
        with pytest.raises(AuthenticationError):
            plane.admit(tenant="stranger")

    def test_default_config_admits_strangers_without_renormalizing(self):
        plane = ControlPlane(
            ROSTER,
            admit_rate=4.0,
            admit_burst=8.0,
            default_config=TenantConfig("guest", quota_rate=1.0),
        )
        before = plane.snapshot()["tenants"]["gold"]["weight"]
        assert plane.admit(tenant="stranger") == "tenant:stranger"
        # the stranger's arrival must not shrink existing tenants' shares
        assert plane.snapshot()["tenants"]["gold"]["weight"] == before

    def test_quota_exhaustion_is_scope_quota(self):
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=0.0, quota_burst=1.0)],
            admit_rate=100.0,
            admit_burst=100.0,
        )
        plane.admit(tenant="t")
        with pytest.raises(QuotaExceededError) as info:
            plane.admit(tenant="t")
        assert info.value.scope == "quota"
        assert info.value.tenant == "t"
        # a quota denial is shed-shaped for every existing handler
        assert isinstance(info.value, RateLimitExceededError)

    def test_share_exhaustion_is_scope_fair_share(self):
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=100.0, quota_burst=100.0)],
            admit_rate=0.0,
            admit_burst=2.0,
        )
        plane.admit(tenant="t")
        plane.admit(tenant="t")
        with pytest.raises(QuotaExceededError) as info:
            plane.admit(tenant="t")
        assert info.value.scope == "fair_share"

    def test_denial_burns_no_tokens_from_the_other_bucket(self):
        # quota bucket of 1, share bucket of 2: the second (quota-denied)
        # admit must not drain the share bucket, so after the quota is
        # manually refilled the share still has its token
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=0.5, quota_burst=1.0)],
            admit_rate=0.0,
            admit_burst=2.0,
        )
        plane.admit(tenant="t")
        with pytest.raises(QuotaExceededError):
            plane.admit(tenant="t")  # quota dry; share must be untouched
        plane.admit(tenant="t")  # tick 3: quota refilled 2 x 0.5 = 1
        snapshot = plane.snapshot()["tenants"]["t"]
        assert snapshot["admitted"] == 2
        assert snapshot["quota_shed"] == 1
        assert snapshot["share_shed"] == 0

    def test_batch_stops_at_the_reserve_interactive_continues(self):
        # share capacity 4 with a 50% batch reserve: batch drains the
        # share to 2 and stops; interactive still has 2 tokens to spend
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=10.0, quota_burst=100.0)],
            admit_rate=0.0,
            admit_burst=4.0,
        )
        batch = qos_priority("batch")
        interactive = qos_priority("interactive")
        assert plane.admit(tenant="t", priority=batch)
        assert plane.admit(tenant="t", priority=batch)
        with pytest.raises(QuotaExceededError) as info:
            plane.admit(tenant="t", priority=batch)
        assert info.value.scope == "fair_share"
        assert plane.admit(tenant="t", priority=interactive)
        assert plane.admit(tenant="t", priority=interactive)
        with pytest.raises(QuotaExceededError):
            plane.admit(tenant="t", priority=interactive)

    def test_wall_clock_mode_takes_an_injectable_clock(self):
        clock = [0.0]
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=1.0, quota_burst=1.0)],
            admit_rate=100.0,
            admit_burst=100.0,
            clock=lambda: clock[0],
        )
        plane.admit(tenant="t")
        with pytest.raises(QuotaExceededError):
            plane.admit(tenant="t")
        clock[0] = 1.0  # one clock unit refills one token
        plane.admit(tenant="t")

    def test_empty_roster_needs_a_default(self):
        with pytest.raises(ValueError):
            ControlPlane([])
        ControlPlane([], default_config=TenantConfig("guest"))


# ----------------------------------------------------------------------
# gateway integration
# ----------------------------------------------------------------------


def _gateway(control, telemetry=None, **kwargs):
    return ServiceGateway(
        num_shards=2,
        estimator_factory=SyntheticEstimator,
        control=control,
        telemetry=telemetry,
        **kwargs,
    )


class TestGatewayIntegration:
    def test_quota_denial_counts_as_shed_and_ledger_quota_event(self):
        telemetry = Telemetry()
        control = ControlPlane(
            [TenantConfig("t", quota_rate=0.0, quota_burst=1.0)],
            admit_rate=100.0,
            admit_burst=100.0,
        )
        with _gateway(control, telemetry) as gateway:
            gateway.submit(WORKLOAD, RTX_3060, tenant="t").result()
            with pytest.raises(QuotaExceededError):
                gateway.submit(WORKLOAD, RTX_3060, tenant="t")
            stats = gateway.stats()["gateway"]
        assert stats["shed"] == 1
        assert stats["control"]["tenants"]["t"]["quota_shed"] == 1
        events = [
            entry
            for entry in telemetry.ledger.decision_sequence()
            if entry[0] == "quota"
        ]
        assert events and events[0][1] == "quota:t"

    def test_auth_refusal_counts_as_rejected_not_shed(self):
        control = ControlPlane(ROSTER, strict=True)
        with _gateway(control) as gateway:
            with pytest.raises(AuthenticationError):
                gateway.submit(WORKLOAD, RTX_3060, tenant="stranger")
            stats = gateway.stats()["gateway"]
        assert stats["rejected"] == 1
        assert stats["shed"] == 0

    def test_hopeless_deadline_is_shed_at_the_gateway(self):
        telemetry = Telemetry()
        control = ControlPlane([TenantConfig("t")])
        with _gateway(control, telemetry) as gateway:
            with pytest.raises(DeadlineExceededError):
                gateway.submit(
                    WORKLOAD,
                    RTX_3060,
                    tenant="t",
                    deadline=time.perf_counter() - 1.0,
                )
            stats = gateway.stats()["gateway"]
        assert stats["rejected"] == 1
        causes = [
            entry[1]
            for entry in telemetry.ledger.decision_sequence()
            if entry[0] == "deadline"
        ]
        assert "hopeless_at_gateway" in causes

    def test_control_less_gateway_unchanged(self):
        with ServiceGateway(
            num_shards=2, estimator_factory=SyntheticEstimator
        ) as gateway:
            gateway.submit(WORKLOAD, RTX_3060).result()
            stats = gateway.stats()["gateway"]
        assert "control" not in stats

    def test_decision_sequence_identical_threads_vs_asyncio(self):
        import asyncio

        from repro.service import AsyncServiceGateway, replay_async

        trace = generate_traffic("noisy-neighbor", 48, seed=3)
        threads_t = Telemetry()
        with _gateway(make_control("noisy-neighbor"), threads_t) as gateway:
            threads_report = replay(trace, gateway)

        async def _go(telemetry):
            gateway = AsyncServiceGateway(
                num_shards=2,
                estimator_factory=SyntheticEstimator,
                control=make_control("noisy-neighbor"),
                telemetry=telemetry,
            )
            try:
                return await replay_async(trace, gateway)
            finally:
                await gateway.aclose()

        asyncio_t = Telemetry()
        asyncio_report = asyncio.run(_go(asyncio_t))
        assert threads_report.tenants == asyncio_report.tenants
        admission = lambda ledger: [  # noqa: E731 - local filter
            entry
            for entry in ledger.decision_sequence()
            if entry[0] in ("quota", "auth", "deadline", "shed")
        ]
        assert admission(threads_t.ledger) == admission(asyncio_t.ledger)
        assert admission(threads_t.ledger), "flood produced no decisions"


# ----------------------------------------------------------------------
# auth shim middleware
# ----------------------------------------------------------------------


class TestAuthShim:
    def _service(self, *grants, tokens=None):
        return EstimationService(
            estimator=SyntheticEstimator(),
            middlewares=(AuthShimMiddleware(grants, tokens=tokens),),
        )

    def test_valid_token_passes(self):
        with self._service(TenantGrant("acme")) as service:
            result = service.submit(
                WORKLOAD,
                RTX_3060,
                tenant="acme",
                metadata={"auth_token": "token-acme"},
            ).result()
        assert result.peak_bytes > 0

    def test_missing_token_is_unauthenticated(self):
        with self._service(TenantGrant("acme")) as service:
            with pytest.raises(AuthenticationError, match="no auth_token"):
                service.submit(WORKLOAD, RTX_3060, tenant="acme")

    def test_unknown_token_is_unauthenticated(self):
        with self._service(TenantGrant("acme")) as service:
            with pytest.raises(AuthenticationError, match="unknown"):
                service.submit(
                    WORKLOAD,
                    RTX_3060,
                    tenant="acme",
                    metadata={"auth_token": "forged"},
                )

    def test_token_tenant_mismatch_is_unauthenticated(self):
        grants = (TenantGrant("acme"), TenantGrant("rival"))
        with self._service(*grants) as service:
            with pytest.raises(AuthenticationError, match="claims"):
                service.submit(
                    WORKLOAD,
                    RTX_3060,
                    tenant="acme",
                    metadata={"auth_token": "token-rival"},
                )

    def test_model_outside_grant_is_unauthorized(self):
        grant = TenantGrant("acme", models=frozenset({"SqueezeNet"}))
        with self._service(grant) as service:
            with pytest.raises(AuthorizationError, match="no grant"):
                service.submit(
                    WORKLOAD,
                    RTX_3060,
                    tenant="acme",
                    metadata={"auth_token": "token-acme"},
                )

    def test_priority_above_grant_floor_is_unauthorized(self):
        grant = TenantGrant("acme", min_priority=1)
        with self._service(grant) as service:
            with pytest.raises(AuthorizationError, match="interactive"):
                service.submit(
                    WORKLOAD,
                    RTX_3060,
                    tenant="acme",
                    priority=qos_priority("interactive"),
                    metadata={"auth_token": "token-acme"},
                )
            # the floor itself is fine
            service.submit(
                WORKLOAD,
                RTX_3060,
                tenant="acme",
                priority=DEFAULT_PRIORITY,
                metadata={"auth_token": "token-acme"},
            ).result()

    def test_explicit_token_map(self):
        grant = TenantGrant("acme")
        with self._service(tokens={"s3cret": grant}) as service:
            service.submit(
                WORKLOAD,
                RTX_3060,
                tenant="acme",
                metadata={"auth_token": "s3cret"},
            ).result()


# ----------------------------------------------------------------------
# wire + request-shape compatibility
# ----------------------------------------------------------------------


class TestWireCompat:
    def test_untenanted_request_dict_is_byte_compatible(self):
        request = ServiceRequest(
            workload=WORKLOAD, device=RTX_3060, fingerprint="fp"
        )
        payload = request.as_dict()
        assert "tenant" not in payload
        assert "priority" not in payload
        restored = ServiceRequest.from_dict(payload)
        assert restored.tenant == ""
        assert restored.priority == DEFAULT_PRIORITY

    def test_tenanted_request_round_trips(self):
        request = ServiceRequest(
            workload=WORKLOAD,
            device=RTX_3060,
            fingerprint="fp",
            tenant="acme",
            priority=2,
        )
        restored = ServiceRequest.from_dict(request.as_dict())
        assert restored.tenant == "acme"
        assert restored.priority == 2

    def test_quota_error_round_trips_with_tenant_and_scope(self):
        error = QuotaExceededError(
            "acme", retry_after_seconds=1.5, scope="fair_share"
        )
        restored = error_from_wire(error_to_wire(error))
        assert isinstance(restored, QuotaExceededError)
        assert restored.tenant == "acme"
        assert restored.scope == "fair_share"
        assert restored.retry_after_seconds == 1.5

    def test_auth_errors_round_trip_as_their_own_types(self):
        for error in (
            AuthenticationError("bad token"),
            AuthorizationError("no grant"),
        ):
            restored = error_from_wire(error_to_wire(error))
            assert type(restored) is type(error)


# ----------------------------------------------------------------------
# calibrated tenant scenarios
# ----------------------------------------------------------------------


class TestTenantScenarios:
    def test_tenant_configs_matches_generated_traffic(self):
        for scenario in ("noisy-neighbor", "quota-storm"):
            names = {config.name for config in tenant_configs(scenario)}
            trace = generate_traffic(scenario, 60, seed=0)
            assert {r.tenant for r in trace.requests} <= names

    def test_unknown_tenant_scenario_raises(self):
        with pytest.raises(ValueError, match="noisy-neighbor"):
            tenant_configs("zipf")

    def test_make_control_builds_fresh_state(self):
        first = make_control("noisy-neighbor")
        first.admit(tenant="hostile")
        second = make_control("noisy-neighbor")
        assert second.snapshot()["tick"] == 0

    def test_priority_inversion_interactive_survives_the_batch_flood(self):
        trace = generate_traffic("priority-inversion", 100, seed=1)
        with _gateway(make_control("priority-inversion")) as gateway:
            interactive_denied = 0
            interactive_total = 0
            for request in trace.requests:
                if request.priority == 0:
                    interactive_total += 1
                try:
                    gateway.submit(
                        request.workload,
                        request.device,
                        tenant=request.tenant,
                        priority=request.priority,
                    ).result()
                except QuotaExceededError:
                    if request.priority == 0:
                        interactive_denied += 1
                except RateLimitExceededError:
                    pass
        assert interactive_total > 0
        assert interactive_denied == 0, (
            f"{interactive_denied}/{interactive_total} interactive "
            "requests starved by the same tenant's batch flood"
        )
