"""Traffic scenarios: determinism, shape guarantees, replay accounting."""

import pytest

from repro.service import (
    SCENARIO_NAMES,
    ServiceGateway,
    SyntheticEstimator,
    generate_traffic,
    replay,
    workload_catalog,
)
from repro.service.middleware import (
    RequestContext,
    ServiceRequest,
    ValidationMiddleware,
)
from repro.workload import RTX_3060


class TestCatalog:
    def test_deterministic_and_distinct(self):
        first = workload_catalog(12, seed=5)
        second = workload_catalog(12, seed=5)
        assert first == second
        assert len({w.to_key() for w in first}) == 12

    def test_different_seeds_differ(self):
        assert workload_catalog(12, seed=1) != workload_catalog(12, seed=2)

    def test_catalog_entries_pass_validation(self):
        middleware = ValidationMiddleware()
        for workload in workload_catalog(16, seed=0):
            request = ServiceRequest(
                workload=workload, device=RTX_3060, fingerprint="x"
            )
            ctx = RequestContext(request_id=1, submitted_at=0.0)
            assert middleware.on_request(request, ctx) is None

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            workload_catalog(0)
        with pytest.raises(ValueError):
            workload_catalog(10_000)


class TestGeneration:
    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_deterministic_per_seed(self, scenario):
        first = generate_traffic(scenario, 80, seed=9)
        second = generate_traffic(scenario, 80, seed=9)
        assert first == second
        assert len(first) == 80

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    def test_waves_partition_the_trace(self, scenario):
        trace = generate_traffic(scenario, 50, seed=0, waves=5)
        waves = trace.waves()
        assert sum(len(wave) for wave in waves) == 50
        assert len(waves) == 5

    def test_zipf_concentrates_on_a_hot_key(self):
        trace = generate_traffic("zipf", 300, seed=0, unique_workloads=8)
        counts: dict = {}
        for request in trace.requests:
            key = (request.workload.to_key(), request.device.to_key())
            counts[key] = counts.get(key, 0) + 1
        hottest = max(counts.values())
        assert hottest > 300 / 8  # far above the uniform share

    def test_duplicate_storm_is_mostly_one_request(self):
        trace = generate_traffic("duplicate-storm", 200, seed=1)
        counts: dict = {}
        for request in trace.requests:
            key = (request.workload.to_key(), request.device.to_key())
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values()) > 0.7 * 200

    def test_adversarial_never_repeats_its_cache_busters(self):
        trace = generate_traffic("adversarial", 90, seed=0)
        busters = [
            r.workload
            for r in trace.requests
            if r.workload.batch_size >= 64
        ]
        assert busters  # a third of the stream
        assert len({w.to_key() for w in busters}) == len(busters)

    @pytest.mark.parametrize("scenario", SCENARIO_NAMES)
    @pytest.mark.parametrize("num_requests", (1, 2, 3))
    def test_size_contract_holds_below_wave_count(
        self, scenario, num_requests
    ):
        # fewer requests than waves must still produce exactly the asked
        # number (bursty used to pad every wave to at least one request)
        trace = generate_traffic(scenario, num_requests, seed=0, waves=4)
        assert len(trace) == num_requests

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            generate_traffic("tsunami", 10)
        with pytest.raises(ValueError):
            generate_traffic("uniform", 0)
        with pytest.raises(ValueError):
            generate_traffic("uniform", 10, waves=0)


class TestSyntheticEstimator:
    def test_deterministic_across_instances(self):
        catalog = workload_catalog(4, seed=0)
        first = SyntheticEstimator()
        second = SyntheticEstimator()
        for workload in catalog:
            a = first.estimate(workload, RTX_3060)
            b = second.estimate(workload, RTX_3060)
            assert a.peak_bytes == b.peak_bytes

    def test_distinct_requests_get_distinct_peaks(self):
        estimator = SyntheticEstimator()
        peaks = {
            estimator.estimate(workload, RTX_3060).peak_bytes
            for workload in workload_catalog(8, seed=0)
        }
        assert len(peaks) == 8

    def test_counts_calls(self):
        estimator = SyntheticEstimator()
        workload = workload_catalog(1, seed=0)[0]
        estimator.estimate(workload, RTX_3060)
        estimator.estimate(workload, RTX_3060)
        assert estimator.calls == 2


class TestReplay:
    def test_every_request_is_accounted_for(self):
        trace = generate_traffic("adversarial", 120, seed=0)
        with ServiceGateway(
            num_shards=2,
            estimator_factory=SyntheticEstimator,
            max_queue_depth=8,
        ) as gateway:
            report = replay(trace, gateway)
        assert (
            report.answered
            + report.shed
            + report.rejected
            + report.errors
            == 120
        )
        assert report.rejected > 0  # the invalid third was refused
        assert report.as_dict()["reject_rate"] == pytest.approx(
            report.rejected / 120
        )

    def test_replay_works_against_a_bare_service(self):
        from repro.service import EstimationService

        trace = generate_traffic("uniform", 30, seed=0)
        with EstimationService(
            estimator=SyntheticEstimator(), max_workers=2
        ) as service:
            report = replay(trace, service)
        assert report.answered == 30
        assert report.throughput_rps > 0
