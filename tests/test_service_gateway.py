"""ServiceGateway: routing policies, backpressure, aggregation, drain."""

import threading

import pytest

from repro.errors import (
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from repro.service import (
    BroadcastWarmupRouting,
    ConsistentHashRouting,
    EstimationService,
    LeastLoadedRouting,
    RandomRouting,
    ServiceGateway,
    SyntheticEstimator,
    aggregate_shard_stats,
    make_policy,
)
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV2", "sgd", 8)


def make_gateway(**kwargs):
    kwargs.setdefault("estimator_factory", SyntheticEstimator)
    kwargs.setdefault("num_shards", 4)
    return ServiceGateway(**kwargs)


class TestRoutingPolicies:
    def test_consistent_hash_is_deterministic_and_covers_shards(self):
        policy = ConsistentHashRouting(num_shards=4)
        keys = [f"fingerprint-{i}" for i in range(256)]
        first = [policy.shard_for(key) for key in keys]
        second = [policy.shard_for(key) for key in keys]
        assert first == second
        assert set(first) == {0, 1, 2, 3}  # every shard owns key space

    def test_consistent_hash_spread_is_roughly_balanced(self):
        policy = ConsistentHashRouting(num_shards=4)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[policy.shard_for(f"key-{i}")] += 1
        assert min(counts) > 2000 / 4 * 0.5  # vnodes smooth the split

    def test_resize_remaps_only_a_fraction_of_keys(self):
        small = ConsistentHashRouting(num_shards=4)
        large = ConsistentHashRouting(num_shards=5)
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(
            1 for key in keys if small.shard_for(key) != large.shard_for(key)
        )
        # naive modulo hashing would move ~80%; the ring moves ~1/5
        assert moved < 400

    def test_least_loaded_picks_shortest_queue(self):
        policy = LeastLoadedRouting()
        assert policy.select("any", [3, 1, 2]) == (1,)
        assert policy.select("any", [0, 0, 5]) == (0,)  # tie -> lowest

    def test_random_routing_is_seed_deterministic(self):
        loads = [0, 0, 0, 0]
        sequence1 = RandomRouting(seed=7)
        sequence2 = RandomRouting(seed=7)
        picks1 = [sequence1.select("x", loads)[0] for _ in range(32)]
        picks2 = [sequence2.select("x", loads)[0] for _ in range(32)]
        assert picks1 == picks2
        assert set(picks1) <= {0, 1, 2, 3}

    def test_broadcast_returns_primary_first_then_all_others(self):
        policy = BroadcastWarmupRouting(ConsistentHashRouting(3))
        selected = policy.select("some-fingerprint", [0, 0, 0])
        assert len(selected) == 3
        assert sorted(selected) == [0, 1, 2]
        assert selected[0] == ConsistentHashRouting(3).shard_for(
            "some-fingerprint"
        )

    def test_make_policy_names(self):
        for name in ("hash", "random", "least_loaded", "broadcast"):
            assert make_policy(name, 4).name == name
        with pytest.raises(ValueError):
            make_policy("nope", 4)

    def test_invalid_ring_parameters(self):
        with pytest.raises(ValueError):
            ConsistentHashRouting(num_shards=0)
        with pytest.raises(ValueError):
            ConsistentHashRouting(num_shards=2, vnodes=0)


class TestGatewayRouting:
    def test_repeats_route_to_the_same_shard(self):
        with make_gateway() as gateway:
            shard = gateway.shard_for(WORKLOAD, RTX_3060)
            for _ in range(8):
                gateway.estimate(WORKLOAD, RTX_3060)
            stats = gateway.stats()
            routed = stats["gateway"]["routed_per_shard"]
            assert routed[shard] == 8
            assert sum(routed) == 8
            # shard-local cache served the repeats
            assert stats["aggregate"]["cache_hits"] == 7

    def test_gateway_result_matches_direct_estimator(self):
        reference = SyntheticEstimator().estimate(WORKLOAD, RTX_3060)
        with make_gateway() as gateway:
            served = gateway.estimate(WORKLOAD, RTX_3060)
        assert served.peak_bytes == reference.peak_bytes
        assert served.workload == reference.workload

    def test_broadcast_warms_every_shard(self):
        with make_gateway(
            policy=BroadcastWarmupRouting(ConsistentHashRouting(4))
        ) as gateway:
            gateway.estimate(WORKLOAD, RTX_3060)
            gateway.drain()
            stats = gateway.stats()
            assert stats["gateway"]["warmup_replicas"] == 3
            # after warm-up, the key is cached on every shard
            fingerprint = gateway.fingerprint(WORKLOAD, RTX_3060)
            assert all(
                fingerprint in shard.cache for shard in gateway.shards
            )

    def test_least_loaded_ignores_the_fingerprint(self):
        with make_gateway(policy=LeastLoadedRouting()) as gateway:
            for _ in range(8):
                gateway.estimate(WORKLOAD, RTX_3060)
                # the pending slot frees in a done-callback that can lag
                # result(): wait so the next request sees an empty fleet
                deadline = 100
                while gateway.pending() > 0 and deadline > 0:
                    threading.Event().wait(0.01)
                    deadline -= 1
            routed = gateway.stats()["gateway"]["routed_per_shard"]
            # each request found every queue empty, and the tie-break
            # ignores the key: all land on shard 0
            assert routed[0] == 8

    def test_explicit_shards_are_adopted(self):
        shards = [
            EstimationService(estimator=SyntheticEstimator(), max_workers=1)
            for _ in range(2)
        ]
        with ServiceGateway(shards=shards) as gateway:
            assert gateway.num_shards == 2
            assert gateway.shards == tuple(shards)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ServiceGateway(num_shards=0)
        with pytest.raises(ValueError):
            ServiceGateway(shards=[])
        with pytest.raises(ValueError):
            make_gateway(max_queue_depth=0)


class TestBackpressure:
    def test_full_queue_sheds_with_retry_hint(self):
        gate = threading.Event()
        estimator = SyntheticEstimator()
        original = estimator.estimate

        def gated(workload, device):
            assert gate.wait(timeout=10)
            return original(workload, device)

        estimator.estimate = gated
        service = EstimationService(estimator=estimator, max_workers=1)
        gateway = ServiceGateway(shards=[service], max_queue_depth=2)
        try:
            futures = [
                gateway.submit(WORKLOAD.with_batch_size(1 + i), RTX_3060)
                for i in range(2)
            ]
            with pytest.raises(RateLimitExceededError) as excinfo:
                gateway.submit(WORKLOAD.with_batch_size(3), RTX_3060)
            assert excinfo.value.retry_after_seconds > 0
            assert gateway.stats()["gateway"]["shed"] == 1
            gate.set()
            for future in futures:
                future.result(timeout=10)
            # done-callbacks may lag result(): wait for the slots to free
            deadline = 100
            while gateway.pending() > 0 and deadline > 0:
                threading.Event().wait(0.01)
                deadline -= 1
            # queue drained: the retry is admitted
            gateway.estimate(WORKLOAD.with_batch_size(3), RTX_3060)
        finally:
            gate.set()
            gateway.close()

    def test_shard_rejections_pass_through_and_are_counted(self):
        with make_gateway(num_shards=2) as gateway:
            with pytest.raises(RequestRejectedError):
                gateway.submit(
                    WorkloadConfig("no-such-model", "sgd", 8), RTX_3060
                )
            stats = gateway.stats()["gateway"]
            assert stats["rejected"] == 1
            assert stats["pending"] == 0  # the slot was released


class TestLifecycle:
    def test_drain_blocks_new_work_and_waits_for_inflight(self):
        gate = threading.Event()
        estimator = SyntheticEstimator()
        original = estimator.estimate

        def gated(workload, device):
            assert gate.wait(timeout=10)
            return original(workload, device)

        estimator.estimate = gated
        service = EstimationService(estimator=estimator, max_workers=1)
        gateway = ServiceGateway(shards=[service])
        future = gateway.submit(WORKLOAD, RTX_3060)
        drained = []
        waiter = threading.Thread(
            target=lambda: drained.append(gateway.drain(timeout=10))
        )
        waiter.start()
        gate.set()
        waiter.join(timeout=10)
        assert drained == [True]
        assert future.done()
        with pytest.raises(ServiceClosedError):
            gateway.submit(WORKLOAD, RTX_3060)
        gateway.close()

    def test_drain_times_out_while_work_is_stuck(self):
        gate = threading.Event()
        estimator = SyntheticEstimator()
        original = estimator.estimate

        def gated(workload, device):
            assert gate.wait(timeout=10)
            return original(workload, device)

        estimator.estimate = gated
        service = EstimationService(estimator=estimator, max_workers=1)
        gateway = ServiceGateway(shards=[service])
        gateway.submit(WORKLOAD, RTX_3060)
        assert gateway.drain(timeout=0.05) is False
        gate.set()
        assert gateway.drain(timeout=10) is True
        gateway.close()

    def test_close_is_idempotent_and_context_manager_closes(self):
        gateway = make_gateway(num_shards=2)
        with gateway:
            gateway.estimate(WORKLOAD, RTX_3060)
        gateway.close()  # second close is a no-op
        with pytest.raises(ServiceClosedError):
            gateway.submit(WORKLOAD, RTX_3060)

    def test_drain_with_inflight_loses_nothing_and_never_double_sheds(self):
        # satellite of the sans-IO PR: the thread-driver mirror of the
        # asyncio drain test — a full queue sheds exactly once, draining
        # with requests still gated resolves every admitted future, and
        # close stays idempotent afterwards
        gate = threading.Event()
        estimator = SyntheticEstimator()
        original = estimator.estimate

        def gated(workload, device):
            assert gate.wait(timeout=10)
            return original(workload, device)

        estimator.estimate = gated
        service = EstimationService(estimator=estimator, max_workers=2)
        gateway = ServiceGateway(shards=[service], max_queue_depth=2)
        first = gateway.submit(WORKLOAD, RTX_3060)
        second = gateway.submit(
            WorkloadConfig("MobileNetV2", "adam", 16), RTX_3060
        )
        with pytest.raises(RateLimitExceededError):
            gateway.submit(
                WorkloadConfig("MobileNetV2", "sgd", 32), RTX_3060
            )
        assert gateway.stats()["gateway"]["shed"] == 1
        drained = []
        waiter = threading.Thread(
            target=lambda: drained.append(gateway.drain(timeout=10))
        )
        waiter.start()
        gate.set()
        waiter.join(timeout=10)
        assert drained == [True]
        # no lost results: both admitted futures resolved through drain
        assert first.result(timeout=10).peak_bytes > 0
        assert second.result(timeout=10).peak_bytes > 0
        stats = gateway.stats()["gateway"]
        assert stats["shed"] == 1  # draining did not double-shed
        assert stats["pending"] == 0
        gateway.close()
        gateway.close()  # idempotent after a drain with traffic


class TestAggregation:
    def test_stats_shape_and_totals(self):
        with make_gateway(num_shards=2) as gateway:
            gateway.estimate(WORKLOAD, RTX_3060)
            gateway.estimate(WORKLOAD, RTX_3060)
            gateway.estimate(WORKLOAD, RTX_4060)
            stats = gateway.stats()
        assert stats["gateway"]["requests"] == 3
        assert len(stats["shards"]) == 2
        aggregate = stats["aggregate"]
        assert aggregate["requests"] == 3
        assert aggregate["cache_hits"] == 1
        assert aggregate["computed"] == 2
        assert aggregate["cache_hit_rate"] == pytest.approx(1 / 3)
        assert aggregate["latency_seconds"]["count"] == 3
        assert aggregate["latency_seconds"]["p50"] is not None

    def test_aggregate_recomputes_rates_from_sums(self):
        # one busy shard (2 hits / 2 misses), one idle shard (all misses):
        # averaging per-shard rates would say 25%; the fleet truth is 2/6
        busy = {
            "service": {
                "requests": 4,
                "cache_hits": 2,
                "computed": 2,
                "deduplicated": 0,
                "rejected": 0,
                "throttled": 0,
                "errors": 0,
            },
            "cache": {
                "hits": 2,
                "misses": 2,
                "evictions": 0,
                "expirations": 0,
                "size": 2,
            },
            "inflight": 0,
        }
        idle = {
            "service": {
                "requests": 2,
                "cache_hits": 0,
                "computed": 2,
                "deduplicated": 0,
                "rejected": 0,
                "throttled": 0,
                "errors": 0,
            },
            "cache": {
                "hits": 0,
                "misses": 2,
                "evictions": 0,
                "expirations": 0,
                "size": 2,
            },
            "inflight": 1,
        }
        aggregate = aggregate_shard_stats([busy, idle], [0.1, 0.2, 0.3])
        assert aggregate["requests"] == 6
        assert aggregate["cache_hit_rate"] == pytest.approx(2 / 6)
        assert aggregate["cache"]["hit_rate"] == pytest.approx(2 / 6)
        assert aggregate["inflight"] == 1
        assert aggregate["latency_seconds"]["p50"] == pytest.approx(0.2)

    def test_empty_aggregate(self):
        aggregate = aggregate_shard_stats([])
        assert aggregate["requests"] == 0
        assert aggregate["cache_hit_rate"] == 0.0
        assert aggregate["latency_seconds"]["p50"] is None

    def test_idle_shard_reservoirs_do_not_poison_fleet_percentiles(self):
        # regression (sans-IO PR satellite): a fleet where some shards
        # never served a request must still merge — empty reservoirs
        # contribute nothing, a fully idle fleet reports None, and stray
        # None entries in the sample union are dropped, not compared
        with make_gateway(num_shards=4) as gateway:
            gateway.estimate(WORKLOAD, RTX_3060)  # exactly one busy shard
            stats = gateway.stats()
        fleet_latency = stats["aggregate"]["latency_seconds"]
        assert fleet_latency["count"] == 1
        assert fleet_latency["p50"] == fleet_latency["p95"]
        idle_shards = [
            shard
            for shard in stats["shards"]
            if shard["service"]["latency_seconds"]["count"] == 0
        ]
        assert len(idle_shards) == 3  # the merge really saw empty ones

        with make_gateway(num_shards=2) as gateway:
            fresh = gateway.stats()  # fully idle fleet, zero samples
        assert fresh["aggregate"]["latency_seconds"]["p95"] is None
        assert fresh["aggregate"]["latency_seconds"]["max"] is None

        shard_stats = [make_gateway(num_shards=1).stats()["shards"][0]]
        merged = aggregate_shard_stats(shard_stats, [None, 0.25, None])
        assert merged["latency_seconds"]["count"] == 1
        assert merged["latency_seconds"]["p50"] == pytest.approx(0.25)

    def test_partial_snapshot_from_dead_worker_does_not_raise(self):
        # regression (process-pool PR satellite): a shard whose substrate
        # worker died mid-request can surface a *partial* stats dict —
        # counters missing, cache block absent, even the whole service
        # section gone.  The fleet merge must count what is there and
        # treat the rest as zero, never KeyError.
        healthy = {
            "service": {
                "requests": 4,
                "cache_hits": 1,
                "computed": 3,
                "deduplicated": 0,
                "rejected": 0,
                "throttled": 0,
                "errors": 0,
                "stages": {
                    "simulate": {"count": 3, "total_seconds": 0.3}
                },
                "workers": {"101": 3},
            },
            "cache": {
                "hits": 1,
                "misses": 3,
                "evictions": 0,
                "expirations": 0,
                "size": 3,
            },
            "inflight": 0,
        }
        truncated = {
            # worker died while serializing: only some counters made it
            "service": {
                "requests": 2,
                "errors": 1,
                "stages": {"simulate": {"count": 1}},  # no total_seconds
                "workers": {"101": 1},
            },
            # no "cache" block at all
        }
        hollow = {}  # the shard process itself is gone
        aggregate = aggregate_shard_stats(
            [healthy, truncated, hollow], [0.1, 0.2]
        )
        assert aggregate["requests"] == 6
        assert aggregate["errors"] == 1
        assert aggregate["computed"] == 3
        assert aggregate["cache"]["hits"] == 1
        assert aggregate["stages"]["simulate"]["count"] == 4
        assert aggregate["stages"]["simulate"]["total_seconds"] == (
            pytest.approx(0.3)
        )
        # the shared-pool worker is summed across the shards that saw it
        assert aggregate["workers"] == {"101": 4}
        assert aggregate["latency_seconds"]["count"] == 2

    def test_percentile_validates_q_even_on_empty_reservoirs(self):
        from repro.service import percentile

        assert percentile([], 95) is None
        with pytest.raises(ValueError):
            percentile([], 150)  # bad q must not hide behind empty
