"""The caching allocator: BFC search, split/coalesce, caching, OOM chain."""

import pytest

from repro.allocator.caching import CachingAllocator
from repro.allocator.constants import AllocatorConfig
from repro.allocator.device import DeviceAllocator
from repro.errors import InvalidFreeError, SimOutOfMemoryError
from repro.units import GiB, KiB, MiB


def make_allocator(capacity=1 * GiB, config=None):
    device = DeviceAllocator(capacity=capacity)
    if config is None:
        return CachingAllocator(device), device
    return CachingAllocator(device, config=config), device


class TestBasicAllocation:
    def test_small_alloc_reserves_2mib_segment(self):
        alloc, _ = make_allocator()
        block = alloc.malloc(1000)
        assert block.size == 1024  # 512-rounded
        assert alloc.reserved_bytes == 2 * MiB
        assert alloc.allocated_bytes == 1024

    def test_medium_alloc_reserves_20mib_buffer(self):
        alloc, _ = make_allocator()
        alloc.malloc(5 * MiB)
        assert alloc.reserved_bytes == 20 * MiB

    def test_huge_alloc_rounds_to_2mib(self):
        alloc, _ = make_allocator()
        alloc.malloc(21 * MiB)
        assert alloc.reserved_bytes == 22 * MiB

    def test_two_small_allocs_share_a_segment(self):
        alloc, _ = make_allocator()
        alloc.malloc(512 * KiB)
        alloc.malloc(512 * KiB)
        assert alloc.reserved_bytes == 2 * MiB
        assert len(alloc.segments()) == 1

    def test_requested_vs_allocated_tracks_rounding_waste(self):
        alloc, _ = make_allocator()
        alloc.malloc(1000)
        assert alloc.stats.rounding_waste() == 24

    def test_invariants_hold(self):
        alloc, _ = make_allocator()
        blocks = [alloc.malloc(s) for s in (700, 3 * MiB, 100, 15 * MiB)]
        alloc.check_invariants()
        for block in blocks:
            alloc.free(block)
        alloc.check_invariants()


class TestCachingBehaviour:
    def test_free_keeps_segment_reserved(self):
        """§2.2.2: deallocated blocks are cached, not returned to the GPU."""
        alloc, device = make_allocator()
        block = alloc.malloc(5 * MiB)
        alloc.free(block)
        assert alloc.allocated_bytes == 0
        assert alloc.reserved_bytes == 20 * MiB
        assert device.used_bytes == 20 * MiB

    def test_cache_hit_reuses_block(self):
        alloc, device = make_allocator()
        block = alloc.malloc(5 * MiB)
        alloc.free(block)
        allocs_before = device.stats.num_allocs
        again = alloc.malloc(5 * MiB)
        assert device.stats.num_allocs == allocs_before  # no new cudaMalloc
        assert again.addr == block.addr
        assert alloc.stats.num_cache_hits == 1

    def test_empty_cache_releases_free_segments(self):
        alloc, device = make_allocator()
        block = alloc.malloc(5 * MiB)
        alloc.free(block)
        released = alloc.empty_cache()
        assert released == 20 * MiB
        assert device.used_bytes == 0
        assert alloc.reserved_bytes == 0

    def test_empty_cache_keeps_pinned_segments(self):
        alloc, _ = make_allocator()
        keep = alloc.malloc(512)
        drop = alloc.malloc(512 * KiB)
        alloc.free(drop)
        alloc.empty_cache()
        # the segment holding `keep` cannot be released
        assert alloc.reserved_bytes == 2 * MiB
        alloc.free(keep)

    def test_non_caching_ablation_returns_segments(self):
        config = AllocatorConfig(cache_segments=False)
        alloc, device = make_allocator(config=config)
        block = alloc.malloc(5 * MiB)
        alloc.free(block)
        assert device.used_bytes == 0


class TestBestFitAndSplit:
    def test_best_fit_prefers_smallest_sufficient(self):
        alloc, _ = make_allocator()
        small = alloc.malloc(2 * MiB)
        large = alloc.malloc(18 * MiB)
        alloc.free(small)
        alloc.free(large)
        block = alloc.malloc(2 * MiB)
        assert block.size >= 2 * MiB
        # served from the smaller cached block, not the 18 MiB one
        assert block.addr == small.addr

    def test_large_block_splits_with_remainder(self):
        alloc, _ = make_allocator()
        block = alloc.malloc(12 * MiB)  # exact-ish segment 12 MiB
        alloc.free(block)
        part = alloc.malloc(4 * MiB)
        assert part.size == 4 * MiB
        assert alloc.stats.num_splits >= 1
        assert alloc.cached_bytes() == 8 * MiB

    def test_large_pool_split_needs_remainder_over_1mib(self):
        """Large-pool blocks split only when > kSmallSize remains."""
        alloc, _ = make_allocator()
        block = alloc.malloc(19 * MiB + 512 * KiB)  # 20 MiB segment
        alloc.free(block)
        again = alloc.malloc(19 * MiB + 256 * KiB)
        # remainder would be < 1 MiB -> no split; whole block served
        assert again.size == 20 * MiB

    def test_small_pool_split_granularity(self):
        alloc, _ = make_allocator()
        first = alloc.malloc(512)
        second = alloc.malloc(512)
        assert second.addr == first.addr + 512

    def test_coalesce_on_free(self):
        alloc, _ = make_allocator()
        a = alloc.malloc(512)
        b = alloc.malloc(512)
        c = alloc.malloc(512)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)
        alloc.check_invariants()
        segment = alloc.segments()[0]
        assert segment.is_fully_free()
        assert alloc.stats.num_coalesces >= 2

    def test_no_split_ablation(self):
        config = AllocatorConfig(allow_split=False)
        alloc, _ = make_allocator(config=config)
        block = alloc.malloc(512)
        assert block.size == 2 * MiB  # whole segment handed out


class TestSequenceSensitivity:
    def test_dealloc_order_changes_peak(self):
        """Paper Fig. 3: freeing before vs after the next alloc changes the
        peak segment memory for identical tensors."""
        sizes = [40 * MiB, 30 * MiB]
        # sequence 1: allocate both, then free
        alloc1, _ = make_allocator()
        a = alloc1.malloc(sizes[0])
        b = alloc1.malloc(sizes[1])
        alloc1.free(a)
        alloc1.free(b)
        peak1 = alloc1.stats.reserved_bytes.peak
        # sequence 2: free the first before allocating the second
        alloc2, _ = make_allocator()
        a = alloc2.malloc(sizes[0])
        alloc2.free(a)
        alloc2.malloc(sizes[1])
        peak2 = alloc2.stats.reserved_bytes.peak
        assert peak1 > peak2


class TestOomChain:
    def test_reclaim_before_oom(self):
        """§3.4 OOM: cached segments are reclaimed before failing."""
        alloc, device = make_allocator(capacity=64 * MiB)
        block = alloc.malloc(40 * MiB)
        alloc.free(block)  # cached: device still holds 40 MiB
        assert device.used_bytes == 40 * MiB
        # 60 MiB does not fit beside the cache; reclaim must kick in
        alloc.malloc(60 * MiB)
        assert alloc.reserved_bytes == 60 * MiB

    def test_oom_when_live_blocks_pin_segments(self):
        alloc, _ = make_allocator(capacity=64 * MiB)
        alloc.malloc(40 * MiB)  # live -> not reclaimable
        with pytest.raises(SimOutOfMemoryError) as excinfo:
            alloc.malloc(60 * MiB)
        assert excinfo.value.allocated == 40 * MiB
        assert alloc.stats.num_ooms == 1

    def test_single_level_ablation_skips_reclaim(self):
        config = AllocatorConfig(reclaim_on_oom=False)
        alloc, _ = make_allocator(capacity=64 * MiB, config=config)
        block = alloc.malloc(40 * MiB)
        alloc.free(block)
        with pytest.raises(SimOutOfMemoryError):
            alloc.malloc(60 * MiB)

    def test_retry_counter_increments(self):
        alloc, _ = make_allocator(capacity=64 * MiB)
        block = alloc.malloc(40 * MiB)
        alloc.free(block)
        alloc.malloc(60 * MiB)
        assert alloc.stats.num_alloc_retries >= 1


class TestOwnerApi:
    def test_free_by_owner(self):
        alloc, _ = make_allocator()
        alloc.malloc(1 * MiB, owner=42)
        alloc.free_owner(42)
        assert alloc.allocated_bytes == 0

    def test_double_alloc_same_owner_rejected(self):
        alloc, _ = make_allocator()
        alloc.malloc(512, owner=1)
        with pytest.raises(InvalidFreeError):
            alloc.malloc(512, owner=1)

    def test_unknown_owner_rejected(self):
        alloc, _ = make_allocator()
        with pytest.raises(InvalidFreeError):
            alloc.free_owner(99)

    def test_double_free_rejected(self):
        alloc, _ = make_allocator()
        block = alloc.malloc(512)
        alloc.free(block)
        with pytest.raises(InvalidFreeError):
            alloc.free(block)


class TestTimeline:
    def test_timeline_records_both_series(self):
        alloc, _ = make_allocator()
        block = alloc.malloc(5 * MiB, ts=10)
        alloc.free(block, ts=20)
        assert alloc.timeline is not None
        ts, allocated, reserved = alloc.timeline.series()
        assert ts == [10, 20]
        assert allocated == [5 * MiB, 0]
        assert reserved == [20 * MiB, 20 * MiB]

    def test_timeline_disabled(self):
        device = DeviceAllocator(capacity=GiB)
        alloc = CachingAllocator(device, record_timeline=False)
        alloc.malloc(512)
        assert alloc.timeline is None
