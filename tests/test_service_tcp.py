"""TCP transport: the sans-IO core behind a real socket.

The server is a thin shell over :class:`AsyncServiceGateway` — these
tests pin that the shell adds nothing and loses nothing: results are
byte-identical to in-process drivers, the full exception taxonomy
crosses the wire as typed errors, deadlines rebase across arbitrarily
skewed client clocks, and malformed or vanishing peers never take the
server down.  Each test boots its own in-process server thread
(:class:`TcpServerThread`), so tests are independent and loop-clean.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import struct
import time
from functools import partial

import pytest

from repro.errors import (
    ConnectionLostError,
    DeadlineExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from repro.service import (
    AsyncServiceGateway,
    AsyncTcpServiceClient,
    FaultPlan,
    FaultSpec,
    ServiceGateway,
    SyntheticEstimator,
    TcpServerThread,
    TcpServiceClient,
    generate_traffic,
    replay,
)
from repro.service.wire import FrameDecoder, encode_frame
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV2", "sgd", 8)
OTHER = WorkloadConfig("MobileNetV2", "adam", 16)


@contextlib.contextmanager
def tcp_server(**gateway_kwargs):
    gateway_kwargs.setdefault("num_shards", 2)
    gateway_kwargs.setdefault(
        "estimator_factory", partial(SyntheticEstimator)
    )
    factory = partial(AsyncServiceGateway, **gateway_kwargs)
    with TcpServerThread(factory) as server:
        yield server


def _recv_frames(sock, count, timeout=10.0):
    """Read ``count`` frames off a raw socket (or fewer on EOF)."""
    sock.settimeout(timeout)
    decoder = FrameDecoder()
    messages = []
    while len(messages) < count:
        data = sock.recv(65536)
        if not data:
            break
        messages.extend(decoder.feed(data))
    return messages


class TestBlockingClient:
    def test_estimate_byte_identical_to_direct_call(self):
        direct = SyntheticEstimator().estimate(WORKLOAD, RTX_3060)
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                over_wire = client.estimate(WORKLOAD, RTX_3060)
        assert over_wire == direct
        assert over_wire.peak_bytes == direct.peak_bytes
        assert over_wire.detail == direct.detail

    def test_estimate_many_preserves_request_order(self):
        pairs = [(WORKLOAD, RTX_3060), (OTHER, RTX_4060), (WORKLOAD, RTX_3060)]
        expected = [SyntheticEstimator().estimate(w, d) for w, d in pairs]
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                results = client.estimate_many(pairs)
        assert results == expected

    def test_estimate_many_surfaces_per_request_errors(self):
        bad = WorkloadConfig("no-such-model", "sgd", 8)
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                with pytest.raises(RequestRejectedError):
                    client.estimate_many([(WORKLOAD, RTX_3060), (bad, RTX_3060)])
                mixed = client.estimate_many(
                    [(WORKLOAD, RTX_3060), (bad, RTX_3060)],
                    return_exceptions=True,
                )
        assert mixed[0].peak_bytes > 0
        assert isinstance(mixed[1], RequestRejectedError)

    def test_ping_stats_drain(self):
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                assert client.ping() < 5.0
                client.estimate(WORKLOAD, RTX_3060)
                stats = client.stats()
                assert stats["gateway"]["requests"] == 1
                assert stats["aggregate"]["requests"] >= 1
                assert client.drain(timeout=5.0) is True
                # post-drain the gateway refuses — as a typed wire error
                future = client.submit(OTHER, RTX_4060)
                with pytest.raises(ServiceClosedError):
                    future.result(5.0)

    def test_validation_rejection_crosses_the_wire_typed(self):
        bad = WorkloadConfig("no-such-model", "sgd", 8)
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                future = client.submit(bad, RTX_3060)
                with pytest.raises(RequestRejectedError):
                    future.result(5.0)
                # the connection survived the rejection
                assert client.estimate(WORKLOAD, RTX_3060).peak_bytes > 0

    def test_traces_are_refused_client_side(self):
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                with pytest.raises(ValueError, match="host-local"):
                    client.submit(WORKLOAD, RTX_3060, trace=object())

    def test_replay_accounting_matches_threads_driver(self):
        trace = generate_traffic(
            "adversarial", 60, seed=3, unique_workloads=6
        )
        with ServiceGateway(
            num_shards=2, estimator_factory=partial(SyntheticEstimator)
        ) as gateway:
            reference = replay(trace, gateway)
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                networked = replay(trace, client)
        assert networked.answered == reference.answered
        assert networked.rejected == reference.rejected
        assert networked.shed == reference.shed
        assert networked.errors == reference.errors == 0


class TestDeadlinesOverTheWire:
    def test_deadline_rebases_across_a_skewed_client_clock(self):
        """A client whose monotonic epoch is hours away from the server's
        must still get correct deadline semantics — only *budget* crosses
        the wire.  (With absolute stamps on the wire, the +10000s skew
        below would make every deadline look infinitely generous.)"""
        skewed = lambda: time.perf_counter() + 10_000.0  # noqa: E731
        with tcp_server() as server:
            with TcpServiceClient(*server.address, clock=skewed) as client:
                # plenty of budget: served normally despite the skew
                result = client.estimate(
                    WORKLOAD, RTX_3060, deadline=skewed() + 30.0
                )
                assert result.peak_bytes > 0
                # already-blown budget: typed deadline error, not a serve
                future = client.submit(
                    OTHER, RTX_4060, deadline=skewed() - 0.5
                )
                with pytest.raises(DeadlineExceededError) as excinfo:
                    future.result(5.0)
        assert excinfo.value.late_by_seconds >= 0.5 - 1e-3

    def test_negative_skew_is_equally_harmless(self):
        skewed = lambda: time.perf_counter() - 10_000.0  # noqa: E731
        with tcp_server() as server:
            with TcpServiceClient(*server.address, clock=skewed) as client:
                result = client.estimate(
                    WORKLOAD, RTX_3060, deadline=skewed() + 30.0
                )
                assert result.peak_bytes > 0


class TestProtocolViolations:
    """Malformed peers get an error frame and a clean close — never a
    crashed or wedged server."""

    def _raw(self, address):
        return socket.create_connection(address, timeout=10.0)

    def test_garbage_body_answered_and_closed(self):
        with tcp_server() as server:
            with self._raw(server.address) as sock:
                body = b"this is not json"
                sock.sendall(struct.pack(">I", len(body)) + body)
                frames = _recv_frames(sock, 1)
                assert frames and frames[0]["ok"] is False
                assert frames[0]["id"] is None
                assert frames[0]["error"]["type"] == "protocol"
                assert sock.recv(1) == b""  # server closed the connection
            # and the server is still serving fresh connections
            with TcpServiceClient(*server.address) as client:
                assert client.estimate(WORKLOAD, RTX_3060).peak_bytes > 0
            assert server.server.protocol_errors == 1

    def test_oversized_header_answered_and_closed(self):
        with tcp_server() as server:
            with self._raw(server.address) as sock:
                sock.sendall(struct.pack(">I", 2**31))
                frames = _recv_frames(sock, 1)
                assert frames[0]["error"]["type"] == "protocol"
                assert sock.recv(1) == b""
            with TcpServiceClient(*server.address) as client:
                assert client.ping() < 5.0

    def test_unknown_op_answered_and_closed(self):
        with tcp_server() as server:
            with self._raw(server.address) as sock:
                sock.sendall(encode_frame({"op": "transmogrify", "id": 1}))
                frames = _recv_frames(sock, 1)
                assert frames[0]["id"] is None
                assert frames[0]["error"]["type"] == "protocol"
                assert sock.recv(1) == b""

    def test_bad_payload_in_valid_frame_keeps_connection_open(self):
        """A structurally bad *request* inside a well-formed frame is a
        per-request failure, not a connection failure."""
        with tcp_server() as server:
            with self._raw(server.address) as sock:
                sock.sendall(
                    encode_frame(
                        {
                            "op": "estimate",
                            "id": 0,
                            "request": {"workload": {"model": 7}},
                        }
                    )
                )
                sock.sendall(encode_frame({"op": "ping", "id": 1}))
                frames = _recv_frames(sock, 2)
                by_id = {frame["id"]: frame for frame in frames}
                assert by_id[0]["ok"] is False
                assert by_id[0]["error"]["type"] == "protocol"
                assert by_id[1]["ok"] is True  # still talking

    def test_frame_split_across_many_sends_still_parses(self):
        frame = encode_frame({"op": "ping", "id": 9})
        with tcp_server() as server:
            with self._raw(server.address) as sock:
                for index in range(len(frame)):
                    sock.sendall(frame[index : index + 1])
                frames = _recv_frames(sock, 1)
                assert frames[0] == {"id": 9, "ok": True}

    def test_mid_request_disconnect_leaves_server_healthy(self):
        with tcp_server(
            estimator_factory=partial(SyntheticEstimator, work_seconds=0.05)
        ) as server:
            client = TcpServiceClient(*server.address)
            client.submit(WORKLOAD, RTX_3060)  # in flight...
            client.close()  # ...and the caller vanishes
            # the abandoned estimate settles; accounting stays coherent
            with TcpServiceClient(*server.address) as fresh:
                assert fresh.drain(timeout=10.0) is True
                stats = fresh.stats()
        assert stats["gateway"]["requests"] >= 1
        assert stats["gateway"]["pending"] == 0


class TestConnectionLoss:
    """Planned connection drops surface as typed, id-carrying errors."""

    def drop_first_request_plan(self):
        return FaultPlan.from_specs(
            [FaultSpec(kind="connection_drop", index=0)]
        )

    def test_drop_surfaces_typed_error_with_pending_ids(self):
        with tcp_server(fault_plan=self.drop_first_request_plan()) as server:
            client = TcpServiceClient(*server.address)
            try:
                future = client.submit(WORKLOAD, RTX_3060)
                with pytest.raises(ConnectionLostError) as excinfo:
                    future.result(10.0)
                # the in-flight message id is named, and the type slots
                # into the existing closed-service taxonomy
                assert len(excinfo.value.pending_request_ids) == 1
                assert isinstance(excinfo.value, ServiceClosedError)
                # without reconnect the client is dead — typed, not raw
                with pytest.raises(ConnectionLostError, match="reconnect"):
                    client.submit(OTHER, RTX_4060)
            finally:
                client.close()
            assert server.server.injected_drops == 1

    def test_reconnect_restores_service_after_a_drop(self):
        direct = SyntheticEstimator().estimate(OTHER, RTX_4060)
        with tcp_server(fault_plan=self.drop_first_request_plan()) as server:
            with TcpServiceClient(
                *server.address, reconnect=True
            ) as client:
                # the dropped request itself is lost (it may have reached
                # the server, so it is never blindly resent)...
                with pytest.raises(ConnectionLostError):
                    client.estimate(WORKLOAD, RTX_3060)
                # ...but the next call redials and is served normally
                assert client.estimate(OTHER, RTX_4060) == direct
                assert client.reconnects == 1

    def test_async_client_surfaces_typed_error(self):
        with tcp_server(fault_plan=self.drop_first_request_plan()) as server:
            host, port = server.address

            async def main():
                async with await AsyncTcpServiceClient.connect(
                    host, port
                ) as client:
                    with pytest.raises(ConnectionLostError) as excinfo:
                        await client.estimate(WORKLOAD, RTX_3060)
                    return excinfo.value

            error = asyncio.run(main())
        assert error.pending_request_ids


class TestAsyncClient:
    def test_estimate_and_stats(self):
        direct = SyntheticEstimator().estimate(WORKLOAD, RTX_3060)
        with tcp_server() as server:
            host, port = server.address

            async def main():
                async with await AsyncTcpServiceClient.connect(
                    host, port
                ) as client:
                    result = await client.estimate(WORKLOAD, RTX_3060)
                    rtt = await client.ping()
                    stats = await client.stats()
                    return result, rtt, stats

            result, rtt, stats = asyncio.run(main())
        assert result == direct
        assert rtt < 5.0
        assert stats["gateway"]["requests"] == 1

    def test_replay_async_drives_the_wire_client(self):
        from repro.service import replay_async

        trace = generate_traffic("zipf", 40, seed=5, unique_workloads=6)
        with tcp_server() as server:
            host, port = server.address

            async def main():
                async with await AsyncTcpServiceClient.connect(
                    host, port
                ) as client:
                    return await replay_async(trace, client)

            report = asyncio.run(main())
        assert report.answered == 40
        assert report.errors == 0
        assert report.stats["gateway"]["requests"] == 40

    def test_typed_errors_cross_the_wire(self):
        bad = WorkloadConfig("no-such-model", "sgd", 8)
        with tcp_server() as server:
            host, port = server.address

            async def main():
                async with await AsyncTcpServiceClient.connect(
                    host, port
                ) as client:
                    with pytest.raises(RequestRejectedError):
                        await client.estimate(bad, RTX_3060)
                    return await client.estimate(WORKLOAD, RTX_3060)

            result = asyncio.run(main())
        assert result.peak_bytes > 0


class TestServerLifecycle:
    def test_startup_failure_is_reported(self):
        def exploding_factory():
            raise RuntimeError("no gateway for you")

        server = TcpServerThread(exploding_factory)
        with pytest.raises(RuntimeError, match="failed to start"):
            server.start()

    def test_stop_is_idempotent(self):
        with tcp_server() as server:
            pass
        server.stop()  # second stop: no-op, no error

    def test_connections_served_counter(self):
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as a:
                a.ping()
            with TcpServiceClient(*server.address) as b:
                b.ping()
            # handler bookkeeping lives on the loop thread; the counter
            # increments at accept, which both pings have forced already
            assert server.server.connections_served == 2

    def test_stats_round_trip_preserves_json_shape(self):
        with tcp_server() as server:
            with TcpServiceClient(*server.address) as client:
                client.estimate(WORKLOAD, RTX_3060)
                stats = client.stats()
                # wire stats are the gateway's stats dict, JSON-round-tripped
                assert json.loads(json.dumps(stats)) == stats
                gateway_stats = server.gateway.stats()
        assert stats["gateway"]["requests"] == gateway_stats["gateway"]["requests"]
