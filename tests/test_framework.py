"""Symbolic framework: tensors, planning, layers, optimizers."""

import pytest

from repro.framework.dtypes import DType
from repro.framework.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    Linear,
    MaxPool2d,
    MultiHeadSelfAttention,
    ReLU,
    Softmax,
    make_activation,
)
from repro.framework.loss import CrossEntropyLoss
from repro.framework.module import Module, Residual, Sequential
from repro.framework.optim import make_optimizer, optimizer_names
from repro.framework.plan import PlanContext
from repro.framework.tensor import TensorMeta, tensor


class TestTensorMeta:
    def test_numel_and_nbytes(self):
        meta = tensor(4, 8, dtype=DType.float32)
        assert meta.numel == 32
        assert meta.nbytes == 128

    def test_dtype_sizes(self):
        assert tensor(10, dtype=DType.float16).nbytes == 20
        assert tensor(10, dtype=DType.int64).nbytes == 80
        assert tensor(10, dtype=DType.uint8).nbytes == 10

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            TensorMeta((4, 0))

    def test_reshape_preserves_bytes(self):
        meta = tensor(4, 8)
        reshaped = meta.reshape_keep_bytes((32,))
        assert reshaped.nbytes == meta.nbytes

    def test_reshape_mismatch_raises(self):
        with pytest.raises(ValueError):
            tensor(4, 8).reshape_keep_bytes((33,))

    def test_str(self):
        assert str(tensor(2, 3)) == "float32[2x3]"


class TestPlanContext:
    def test_sequential_chaining(self):
        ctx = PlanContext(tensor(4, 16))
        Linear(16, 32, name="fc")(ctx)
        plan = ctx.finish()
        assert plan.output_meta.shape == (4, 32)
        assert plan.ops[0].inputs == (PlanContext.INPUT_OP_ID,)

    def test_module_paths_nest(self):
        ctx = PlanContext(tensor(4, 16), root="model")
        Sequential(Linear(16, 16, name="fc"), name="body")(ctx)
        plan = ctx.finish()
        assert plan.ops[0].module_path.startswith("model.")
        assert "fc" in plan.ops[0].module_path

    def test_empty_plan_rejected(self):
        ctx = PlanContext(tensor(1, 1))
        with pytest.raises(ValueError):
            ctx.finish()

    def test_consumers_map(self):
        ctx = PlanContext(tensor(2, 8))
        body = Sequential(Linear(8, 8, name="f"), name="b")
        Residual(body)(ctx)
        plan = ctx.finish()
        consumers = plan.consumers()
        # the input feeds both the linear and the residual add
        assert len(consumers[PlanContext.INPUT_OP_ID]) == 2


class TestLayers:
    def test_linear_shapes_and_params(self):
        layer = Linear(128, 64)
        assert layer.parameter_bytes() == (128 * 64 + 64) * 4
        ctx = PlanContext(tensor(2, 10, 128))
        layer(ctx)
        assert ctx.finish().output_meta.shape == (2, 10, 64)

    def test_linear_shape_mismatch(self):
        ctx = PlanContext(tensor(2, 100))
        with pytest.raises(ValueError):
            Linear(128, 64)(ctx)

    def test_conv_output_shape(self):
        ctx = PlanContext(tensor(1, 3, 32, 32))
        Conv2d(3, 16, 3, stride=2, padding=1)(ctx)
        assert ctx.finish().output_meta.shape == (1, 16, 16, 16)

    def test_conv_1x1_has_no_im2col(self):
        ctx = PlanContext(tensor(1, 8, 16, 16))
        Conv2d(8, 16, 1)(ctx)
        assert ctx.finish().ops[0].workspace_bytes == 0

    def test_conv_3x3_declares_workspace(self):
        ctx = PlanContext(tensor(1, 8, 16, 16))
        Conv2d(8, 16, 3, padding=1)(ctx)
        op = ctx.finish().ops[0]
        assert op.workspace_bytes == 8 * 9 * 16 * 16 * 4

    def test_depthwise_groups(self):
        layer = Conv2d(16, 16, 3, groups=16, bias=False)
        assert layer.weight.meta.shape == (16, 1, 3, 3)

    def test_conv_invalid_groups(self):
        with pytest.raises(ValueError):
            Conv2d(10, 16, 3, groups=3)

    def test_maxpool_saves_indices(self):
        ctx = PlanContext(tensor(1, 4, 8, 8))
        MaxPool2d(2)(ctx)
        op = ctx.finish().ops[0]
        assert op.extra_saved[0].dtype is DType.int64
        assert op.extra_saved[0].shape == (1, 4, 4, 4)

    def test_batchnorm_saves_input_and_stats(self):
        ctx = PlanContext(tensor(2, 8, 4, 4))
        BatchNorm2d(8)(ctx)
        op = ctx.finish().ops[0]
        assert op.saves_input
        assert op.extra_saved

    def test_layernorm_validates_dim(self):
        ctx = PlanContext(tensor(2, 4, 32))
        with pytest.raises(ValueError):
            LayerNorm(64)(ctx)

    def test_relu_inplace_is_alias(self):
        ctx = PlanContext(tensor(2, 8))
        ReLU(inplace=True)(ctx)
        op = ctx.finish().ops[0]
        assert op.inplace
        assert op.output_bytes == 0

    def test_relu_materialized_by_default(self):
        ctx = PlanContext(tensor(2, 8))
        ReLU()(ctx)
        assert ctx.finish().ops[0].output_bytes == 64

    def test_softmax_saves_output(self):
        ctx = PlanContext(tensor(2, 4, 16, 16))
        Softmax()(ctx)
        assert ctx.finish().ops[0].saves_output

    def test_dropout_zero_p_is_view(self):
        ctx = PlanContext(tensor(2, 8))
        Dropout(0.0)(ctx)
        assert ctx.finish().ops[0].kind == "view"

    def test_dropout_mask_is_bytes(self):
        ctx = PlanContext(tensor(2, 8))
        Dropout(0.5)(ctx)
        op = ctx.finish().ops[0]
        assert op.extra_saved[0].nbytes == 16  # uint8 mask

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_embedding_requires_int_indices(self):
        ctx = PlanContext(tensor(2, 8))  # float32
        with pytest.raises(ValueError):
            Embedding(100, 16)(ctx)

    def test_flatten_is_view(self):
        ctx = PlanContext(tensor(2, 4, 4, 4))
        Flatten()(ctx)
        op = ctx.finish().ops[0]
        assert op.kind == "view" and op.output_bytes == 0

    def test_make_activation_unknown(self):
        with pytest.raises(ValueError):
            make_activation("quantum")


class TestAttention:
    def test_materializes_quadratic_scores(self):
        ctx = PlanContext(tensor(2, 16, 64))
        MultiHeadSelfAttention(64, 4, dropout=0.0)(ctx)
        plan = ctx.finish()
        score_ops = [o for o in plan.ops if o.name == "aten::bmm"]
        assert score_ops[0].output.shape == (2, 4, 16, 16)

    def test_gqa_shrinks_kv_projection(self):
        full = MultiHeadSelfAttention(64, 8, bias=False)
        gqa = MultiHeadSelfAttention(64, 8, num_kv_heads=2, bias=False)
        assert gqa.parameter_bytes() < full.parameter_bytes()

    def test_invalid_head_split(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(65, 4)
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(64, 8, num_kv_heads=3)

    def test_dropout_adds_mask(self):
        ctx = PlanContext(tensor(1, 8, 32))
        MultiHeadSelfAttention(32, 2, dropout=0.1)(ctx)
        masked = [o for o in ctx.ops if o.extra_saved]
        assert masked


class TestResidual:
    def test_shape_mismatch_rejected(self):
        ctx = PlanContext(tensor(2, 8))
        with pytest.raises(ValueError):
            Residual(Linear(8, 16))(ctx)

    def test_add_consumes_both_branches(self):
        ctx = PlanContext(tensor(2, 8))
        Residual(Linear(8, 8))(ctx)
        add_op = ctx.finish().ops[-1]
        assert len(add_op.inputs) == 2


class TestLoss:
    def test_cross_entropy_saves_log_probs(self):
        ctx = PlanContext(tensor(4, 10))
        CrossEntropyLoss()(ctx)
        plan = ctx.finish()
        assert plan.ops[0].saves_output  # log_softmax
        assert plan.output_meta.shape == (1,)


class TestOptimizers:
    def test_all_names_instantiate(self):
        for name in optimizer_names():
            assert make_optimizer(name) is not None

    def test_unknown_optimizer(self):
        with pytest.raises(ValueError):
            make_optimizer("lion")

    def test_adam_doubles_param_memory(self):
        opt = make_optimizer("adam")
        param = tensor(100, 100)
        assert opt.state_bytes(param) == 2 * param.nbytes

    def test_sgd_is_stateless(self):
        opt = make_optimizer("sgd")
        assert opt.state_bytes(tensor(100)) == 0
        assert not opt.stateful

    def test_sgd_momentum_has_buffer(self):
        opt = make_optimizer("sgd_momentum")
        param = tensor(100)
        assert opt.state_bytes(param) == param.nbytes

    def test_rmsprop_adagrad_single_buffer(self):
        param = tensor(64, 64)
        assert make_optimizer("rmsprop").state_bytes(param) == param.nbytes
        assert make_optimizer("adagrad").state_bytes(param) == param.nbytes

    def test_adafactor_factored_for_matrices(self):
        opt = make_optimizer("adafactor")
        matrix = tensor(1024, 512)
        assert opt.state_bytes(matrix) == (1024 + 512) * 4

    def test_adafactor_full_for_vectors(self):
        opt = make_optimizer("adafactor")
        vec = tensor(1024)
        assert opt.state_bytes(vec) == vec.nbytes

    def test_adafactor_beats_adam_on_large_matrices(self):
        matrix = tensor(4096, 4096)
        adafactor = make_optimizer("adafactor").state_bytes(matrix)
        adam = make_optimizer("adam").state_bytes(matrix)
        assert adafactor < adam / 100


class TestModuleIntrospection:
    def test_parameters_qualified_names(self):
        model = Sequential(Linear(8, 8, name="fc"), name="net")
        names = [p.name for p in model.parameters()]
        assert any("fc" in n and "weight" in n for n in names)

    def test_num_parameters(self):
        model = Linear(10, 5)
        assert model.num_parameters() == 55

    def test_plan_not_implemented(self):
        class Bare(Module):
            pass

        ctx = PlanContext(tensor(1, 1))
        with pytest.raises(NotImplementedError):
            Bare()(ctx)
