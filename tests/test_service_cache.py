"""LRU + TTL estimate cache."""

import pytest

from repro.service.cache import EstimateCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLru:
    def test_hit_and_miss(self):
        cache = EstimateCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_least_recently_used_evicted(self):
        cache = EstimateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats().evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = EstimateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes both value and recency
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_contains_does_not_disturb_state(self):
        cache = EstimateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache and "missing" not in cache
        cache.put("c", 3)  # a was NOT refreshed by the peek: a is LRU
        assert cache.get("a") is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EstimateCache(max_entries=-1)
        with pytest.raises(ValueError):
            EstimateCache(ttl_seconds=0)
        with pytest.raises(ValueError):
            EstimateCache(ttl_seconds=-1)


class TestEdgeCapacities:
    def test_capacity_zero_disables_caching(self):
        cache = EstimateCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert "a" not in cache
        assert len(cache) == 0
        stats = cache.stats()
        # a disabled cache records misses but never hits or evictions
        # (a no-op put is not an insert-then-evict)
        assert stats.hits == 0
        assert stats.misses == 1
        assert stats.evictions == 0
        assert stats.hit_rate == 0.0

    def test_capacity_one_keeps_only_the_newest(self):
        cache = EstimateCache(max_entries=1)
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.put("b", 2)  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert len(cache) == 1
        assert cache.stats().evictions == 1

    def test_capacity_one_refresh_does_not_evict(self):
        cache = EstimateCache(max_entries=1)
        cache.put("a", 1)
        cache.put("a", 2)  # refresh, not overflow
        assert cache.get("a") == 2
        assert cache.stats().evictions == 0


class TestTtlBoundary:
    def test_entry_expires_exactly_at_the_boundary(self):
        """The contract is `now >= expires_at`: the boundary tick is dead."""
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(10.0)  # exactly ttl later
        assert "a" not in cache
        assert cache.get("a") is None
        assert cache.stats().expirations == 1

    def test_entry_lives_an_instant_before_the_boundary(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(10.0 - 1e-9)
        assert cache.get("a") == 1
        assert cache.stats().expirations == 0


class TestExpiredEntryAccounting:
    """Dead entries must not linger in size counts after any peek."""

    def test_contains_reaps_expired_entry(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(11)
        assert "a" not in cache
        # the peek itself purged and counted the expiration — no get needed
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0
        # and it did not touch the hit/miss counters (peek semantics)
        assert stats.hits == 0 and stats.misses == 0

    def test_len_does_not_count_dead_entries(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(5)
        cache.put("c", 3)  # expires 10s after the others
        clock.advance(6)  # a, b dead; c alive
        assert len(cache) == 1
        assert cache.stats().expirations == 2
        assert cache.get("c") == 3

    def test_stats_size_reflects_only_live_entries(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        clock.advance(11)
        stats = cache.stats()
        assert stats.size == 0
        assert stats.expirations == 2
        # reaping is idempotent: a second snapshot does not double count
        assert cache.stats().expirations == 2

    def test_reap_preserves_live_lru_order(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=2, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(5)
        cache.put("b", 2)
        clock.advance(6)  # a dead, b alive
        assert len(cache) == 1
        cache.put("c", 3)  # fits: the dead entry freed its slot
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.stats().evictions == 0

    def test_put_timestamp_is_read_under_the_lock(self):
        """A put never stamps an *earlier* expiry than the clock's present.

        The regression shape: with the clock read outside the lock, a
        concurrent advance between the read and the insert could make a
        fresh entry appear older than an already-expired one.  With an
        injectable clock the observable contract is simply that the TTL
        countdown starts at the put's own clock reading.
        """

        class AdvanceOnReadClock(FakeClock):
            def __call__(self):
                value = self.now
                self.now += 1.0  # every read advances: order is observable
                return value

        clock = AdvanceOnReadClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)  # stamped at t=0, expires at t=10
        # reads so far: 1 (the put). gets read t=1..9: alive until >= 10
        for _ in range(9):
            assert cache.get("a") == 1
        assert cache.get("a") is None  # the read that crossed t=10
        assert cache.stats().expirations == 1


class TestEvictionOrder:
    def test_mixed_get_put_interleaving_orders_eviction(self):
        """Recency is what get/put *touch*, not insertion order."""
        cache = EstimateCache(max_entries=3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1  # a is now most recent
        cache.put("b", 22)  # refresh b above c
        cache.put("d", 4)  # overflow: c is LRU -> evicted
        assert cache.get("c") is None
        assert cache.get("a") == 1
        assert cache.get("b") == 22
        assert cache.get("d") == 4
        cache.put("e", 5)  # overflow again: a was touched last... order is
        # now (a, b, d) by the gets above -> a is oldest touch: evicted
        assert cache.get("a") is None
        assert cache.get("e") == 5
        assert cache.stats().evictions == 2

    def test_failed_get_does_not_refresh(self):
        cache = EstimateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("missing")  # miss: must not disturb LRU order
        cache.put("c", 3)
        assert cache.get("a") is None  # a was still the LRU entry
        assert cache.get("b") == 2


class TestTtl:
    def test_entries_expire(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.misses == 1
        assert "a" not in cache

    def test_put_resets_ttl(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, ttl_seconds=10, clock=clock)
        cache.put("a", 1)
        clock.advance(8)
        cache.put("a", 2)
        clock.advance(8)
        assert cache.get("a") == 2  # 16s after first put, 8s after second

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = EstimateCache(max_entries=4, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1

    def test_clear(self):
        cache = EstimateCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_stats_as_dict(self):
        cache = EstimateCache(max_entries=8)
        cache.put("a", 1)
        cache.get("a")
        payload = cache.stats().as_dict()
        assert payload["size"] == 1
        assert payload["max_entries"] == 8
        assert payload["hit_rate"] == 1.0
