"""Telemetry: spans, exporters, ledger, renderers, and driver identity.

The observability layer makes three promises worth pinning: wire
formats round-trip exactly (spans and ledger events survive
``as_dict``/JSON/``from_dict``), the span *tree shape* is a property of
the request path rather than the execution substrate (threads and
asyncio produce identical names and nesting for the same deterministic
trace), and the ledger records the same decision sequence regardless of
driver.  The deterministic trace keeps every fingerprint unique within
a wave — intra-wave duplicates race between dedup and cache-hit by
timing, which is real behavior but not a cross-driver invariant.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import XMemEstimator
from repro.service import (
    AsyncServiceGateway,
    AuditLedger,
    AuditLogMiddleware,
    EstimationService,
    InMemorySpanExporter,
    JsonLinesSpanExporter,
    LedgerEvent,
    NullSpanExporter,
    ServiceGateway,
    ServiceMetrics,
    Span,
    SyntheticEstimator,
    Telemetry,
    TimingMiddleware,
    Tracer,
    canonical_trace_trees,
    latency_histogram,
    make_policy,
    render_histogram,
    render_loadtest_report,
    render_trend_summary,
    replay,
    replay_async,
)
from repro.service.telemetry import ledger as ledger_events
from repro.service.telemetry.report import render_shard_heat
from repro.service.traffic import TrafficRequest, TrafficTrace
from repro.workload import RTX_3060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV2", "sgd", 8)

# JSON-safe building blocks for wire-format properties
_names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    min_size=1,
    max_size=24,
)
_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)
_attr_values = st.one_of(
    st.integers(-(2**31), 2**31), _floats, st.booleans(), _names
)
_attributes = st.dictionaries(_names, _attr_values, max_size=4)

spans = st.builds(
    Span,
    name=_names,
    trace_id=_names,
    span_id=_names,
    parent_id=st.one_of(st.none(), _names),
    start=_floats,
    end=st.one_of(st.none(), _floats),
    status=st.sampled_from(("ok", "error", "shed", "deadline")),
    attributes=_attributes,
)

events = st.builds(
    LedgerEvent,
    seq=st.integers(0, 2**31),
    ts=_floats,
    event=st.sampled_from(
        (
            ledger_events.ADMIT,
            ledger_events.SHED,
            ledger_events.DEDUP,
            ledger_events.CACHE_HIT,
            ledger_events.COMPUTED,
            ledger_events.DEADLINE,
        )
    ),
    cause=_names,
    fingerprint=_names,
    request_id=st.integers(0, 2**31),
    shard=st.one_of(st.none(), st.integers(0, 64)),
    worker=st.one_of(st.none(), _names),
    attributes=_attributes,
)


class TestSpanRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(span=spans)
    def test_as_dict_from_dict_is_identity(self, span):
        assert Span.from_dict(span.as_dict()) == span

    @settings(max_examples=80, deadline=None)
    @given(span=spans)
    def test_survives_json_cycle(self, span):
        payload = json.loads(json.dumps(span.as_dict(), sort_keys=True))
        restored = Span.from_dict(payload)
        assert restored.as_dict() == span.as_dict()


class TestLedgerEventRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(event=events)
    def test_as_dict_from_dict_is_identity(self, event):
        # attributes are compare-excluded; compare the full wire payload
        assert LedgerEvent.from_dict(event.as_dict()).as_dict() == event.as_dict()

    @settings(max_examples=80, deadline=None)
    @given(event=events)
    def test_survives_json_cycle(self, event):
        payload = json.loads(json.dumps(event.as_dict(), sort_keys=True))
        assert LedgerEvent.from_dict(payload).as_dict() == event.as_dict()


class TestTracer:
    def test_spans_nest_and_export_on_end(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        root = tracer.start_trace("t1", name="request")
        child = tracer.start_span("estimate", parent=root)
        assert child.trace_id == "t1"
        assert child.parent_id == root.span_id
        assert exporter.spans == []  # nothing exported until close
        tracer.end(child)
        tracer.end(root, status="ok")
        assert [span.name for span in exporter.spans] == ["request", "estimate"][::-1]
        assert all(span.end is not None for span in exporter.spans)

    def test_end_is_idempotent(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter=exporter)
        span = tracer.start_trace("t1", name="request")
        tracer.end(span)
        first_end = span.end
        tracer.end(span, status="error")
        assert span.end == first_end
        assert span.status == "ok"
        assert len(exporter.spans) == 1

    def test_span_ids_are_unique(self):
        tracer = Tracer(exporter=NullSpanExporter())
        ids = {tracer.start_trace(f"t{i}", name="x").span_id for i in range(100)}
        assert len(ids) == 100

    def test_canonical_trees_sort_children_by_start(self):
        late = Span(name="b", trace_id="t", span_id="s2", parent_id="s0", start=2.0)
        early = Span(name="a", trace_id="t", span_id="s1", parent_id="s0", start=1.0)
        root = Span(name="root", trace_id="t", span_id="s0", parent_id=None, start=0.0)
        trees = canonical_trace_trees([late, root, early])
        assert trees == [("root", (("a", ()), ("b", ())))]

    def test_canonical_trees_treat_orphans_as_roots(self):
        orphan = Span(name="lost", trace_id="t", span_id="s9", parent_id="gone", start=0.0)
        assert canonical_trace_trees([orphan]) == [("lost", ())]


class TestAuditLedger:
    def _populate(self, ledger):
        ledger.record(ledger_events.ADMIT, cause="compute", fingerprint="f1", request_id=1)
        ledger.record(ledger_events.CACHE_HIT, cause="cache", fingerprint="f1", request_id=2)
        ledger.record(ledger_events.SHED, cause="queue_full", fingerprint="f2", request_id=3, shard=1)

    def test_query_by_fingerprint_event_and_shard(self):
        ledger = AuditLedger()
        self._populate(ledger)
        assert [e.event for e in ledger.events(fingerprint="f1")] == [
            ledger_events.ADMIT,
            ledger_events.CACHE_HIT,
        ]
        assert [e.fingerprint for e in ledger.events(event=ledger_events.SHED)] == ["f2"]
        assert [e.request_id for e in ledger.events(shard=1)] == [3]

    def test_summary_and_len(self):
        ledger = AuditLedger()
        self._populate(ledger)
        assert len(ledger) == 3
        assert ledger.summary() == {"admit": 1, "cache_hit": 1, "shed": 1}

    def test_max_events_keeps_most_recent(self):
        ledger = AuditLedger(max_events=2)
        self._populate(ledger)
        assert len(ledger) == 2
        assert [e.event for e in ledger.events()] == [
            ledger_events.CACHE_HIT,
            ledger_events.SHED,
        ]

    def test_jsonl_durability_and_load(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = AuditLedger(path=str(path))
        self._populate(ledger)
        ledger.close()
        loaded = AuditLedger.load(str(path))
        assert [e.as_dict() for e in loaded.events()] == [
            e.as_dict() for e in ledger.events()
        ]

    def test_decision_sequence_orders_by_shard_layer_request(self):
        ledger = AuditLedger()
        ledger.record(
            ledger_events.ADMIT, cause="route", fingerprint="f1", request_id=0,
            shard=1, attributes={"layer": "gateway"},
        )
        ledger.record(ledger_events.ADMIT, cause="compute", fingerprint="f1", request_id=1, shard=0)
        ledger.record(ledger_events.COMPUTED, cause="estimator", fingerprint="f1", request_id=1, shard=0)
        assert ledger.decision_sequence() == [
            ("admit", "compute", "f1", 0),
            ("computed", "estimator", "f1", 0),
            ("admit", "route", "f1", 1),
        ]


def _deterministic_trace(waves: int = 3) -> TrafficTrace:
    """Unique fingerprints within each wave; repeats only across waves.

    Intra-wave duplicates resolve to dedup or cache-hit depending on
    scheduling; keeping each wave duplicate-free makes the ledger
    decision sequence a cross-driver invariant.
    """
    workloads = [WorkloadConfig("MobileNetV2", "sgd", size) for size in (1, 2, 4, 8)]
    requests = [
        TrafficRequest(workload=workload, device=RTX_3060, wave=wave)
        for wave in range(waves)
        for workload in workloads
    ]
    return TrafficTrace(scenario="handbuilt", seed=0, requests=tuple(requests))


def _run_threads(trace):
    telemetry = Telemetry(detail="full")
    with ServiceGateway(
        num_shards=2,
        estimator_factory=SyntheticEstimator,
        policy=make_policy("hash", 2, seed=0),
        telemetry=telemetry,
    ) as gateway:
        report = replay(trace, gateway)
    return report, telemetry


def _run_asyncio(trace):
    telemetry = Telemetry(detail="full")

    async def _go():
        gateway = AsyncServiceGateway(
            num_shards=2,
            estimator_factory=SyntheticEstimator,
            policy=make_policy("hash", 2, seed=0),
            telemetry=telemetry,
        )
        try:
            return await replay_async(trace, gateway)
        finally:
            await gateway.aclose()

    return asyncio.run(_go()), telemetry


class TestDriverIdentity:
    """Threads and asyncio drivers: same spans, same decisions.

    The procpool third of this invariant lives in
    ``test_service_procpool.py`` (its tests run in a dedicated CI lane).
    """

    def test_span_trees_identical_across_drivers(self):
        trace = _deterministic_trace()
        _, threads_t = _run_threads(trace)
        _, asyncio_t = _run_asyncio(trace)
        threads_trees = canonical_trace_trees(threads_t.spans())
        asyncio_trees = canonical_trace_trees(asyncio_t.spans())
        assert threads_trees == asyncio_trees
        assert len(threads_trees) == len(trace)
        # wave 0 computes, later waves short-circuit at the cache
        computed = [
            tree for tree in threads_trees
            if any(name == "estimate" for name, _ in tree[1][0][1])
        ]
        assert len(computed) == 4

    def test_ledger_decision_sequences_identical_across_drivers(self):
        trace = _deterministic_trace()
        report_a, threads_t = _run_threads(trace)
        report_b, asyncio_t = _run_asyncio(trace)
        assert report_a.answered == report_b.answered == len(trace)
        assert (
            threads_t.ledger.decision_sequence()
            == asyncio_t.ledger.decision_sequence()
        )
        assert threads_t.ledger.summary() == asyncio_t.ledger.summary()
        # wave 0: 4 computes; waves 1-2: 8 cache hits — no dedup races
        summary = threads_t.ledger.summary()
        assert summary["computed"] == 4
        assert summary["cache_hit"] == 8
        assert "dedup" not in summary


class TestStageSpans:
    @pytest.mark.slow
    def test_pipeline_stage_spans_attach_under_estimate(self):
        telemetry = Telemetry()
        with EstimationService(
            estimator=XMemEstimator(iterations=1), max_workers=1,
            telemetry=telemetry,
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
        spans = telemetry.spans()
        estimate = next(span for span in spans if span.name == "estimate")
        stage_names = [
            span.name for span in spans
            if span.name.startswith("stage:")
        ]
        assert stage_names  # the pipeline reported per-stage timings
        assert all(
            span.parent_id == estimate.span_id
            for span in spans if span.name.startswith("stage:")
        )
        tree = canonical_trace_trees(spans)[0]
        assert tree[0] == "request"


class TestAdapterMiddlewares:
    def test_audit_middleware_keeps_legacy_record_shape(self):
        middleware = AuditLogMiddleware(max_records=10)
        with EstimationService(
            estimator=SyntheticEstimator(), middlewares=[middleware]
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
        kinds = [record["event"] for record in middleware.records]
        assert kinds == ["request", "result"]
        request_record = middleware.records[0]
        assert set(request_record) >= {"event", "request_id", "fingerprint", "workload"}
        # the same decisions are queryable through the ledger interface
        assert middleware.ledger.events(event="request")

    def test_audit_middleware_accepts_shared_ledger(self):
        shared = AuditLedger()
        middleware = AuditLogMiddleware(ledger=shared)
        with EstimationService(
            estimator=SyntheticEstimator(), middlewares=[middleware]
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
        assert shared.summary() == {"request": 1, "result": 1}

    def test_timing_middleware_samples_from_spans(self):
        clock_value = [0.0]

        def clock():
            clock_value[0] += 0.25
            return clock_value[0]

        middleware = TimingMiddleware(clock=clock)
        with EstimationService(
            estimator=SyntheticEstimator(), middlewares=[middleware]
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
        assert middleware.samples == [pytest.approx(0.25)]


class TestHistogram:
    def test_latency_histogram_counts(self):
        histogram = latency_histogram(
            [0.00005, 0.0002, 0.0002, 5.0, 100.0],
            bounds=(0.0001, 0.001, 10.0),
        )
        assert histogram["bounds"] == [0.0001, 0.001, 10.0]
        assert histogram["counts"] == [1, 2, 1, 1]

    def test_empty_samples(self):
        histogram = latency_histogram([], bounds=(0.1,))
        assert histogram["counts"] == [0, 0]

    def test_service_metrics_as_dict_exposes_buckets(self):
        metrics = ServiceMetrics()
        metrics.record_computed(0.0002)
        metrics.record_cache_hit(0.3)
        payload = metrics.as_dict()
        histogram = payload["latency_seconds"]["histogram"]
        assert sum(histogram["counts"]) == 2
        assert len(histogram["counts"]) == len(histogram["bounds"]) + 1


class TestRenderers:
    def test_render_histogram_elides_empty_edges(self):
        text = render_histogram(
            {"bounds": [0.001, 0.01, 0.1, 1.0], "counts": [0, 3, 1, 0, 0]},
            title="latency",
        )
        lines = text.splitlines()
        assert lines[0] == "latency (4 samples):"
        assert len(lines) == 3  # only the two occupied buckets
        assert "#" in lines[1]

    def test_render_histogram_no_samples(self):
        assert "no samples" in render_histogram({"bounds": [0.1], "counts": [0, 0]})

    def test_render_shard_heat_accepts_list_and_dict_routed(self):
        shards = [
            {"service": {"requests": 4, "cache_hits": 2, "cache_hit_rate": 0.5,
                         "latency_seconds": {"p95": 0.002}}},
            {"requests": 1, "cache_hits": 0, "cache_hit_rate": 0.0,
             "latency_seconds": {"p95": None}},
        ]
        as_list = render_shard_heat(shards, [4, 1])
        as_dict = render_shard_heat(shards, {"0": 4, "1": 1})
        assert as_list == as_dict
        assert "2.00" in as_list  # p95 in ms

    def test_render_loadtest_report_full_panel(self):
        trace = _deterministic_trace()
        report, telemetry = _run_threads(trace)
        text = render_loadtest_report(
            {"scenario": "handbuilt", "policy": "hash", "driver": "threads",
             "report": report},
            ledger=telemetry.ledger,
            spans=telemetry.spans(),
        )
        assert "=== handbuilt / hash policy / threads driver ===" in text
        assert "shard heat:" in text
        assert "ledger decisions:" in text
        assert "cache_hit" in text
        assert "spans (" in text

    def test_render_trend_summary_ok_and_regression(self):
        trend = {
            "metrics": {
                "warm_speedup": {
                    "baseline": 10.0, "current": 9.0,
                    "delta": -0.1, "verdict": "ok",
                },
            },
            "regressions": [],
        }
        ok_text = render_trend_summary(trend)
        assert "ok: all metrics within tolerance" in ok_text
        assert "-10.0%" in ok_text
        trend["regressions"] = ["warm_speedup"]
        assert "REGRESSIONS: warm_speedup" in render_trend_summary(trend)

    def test_render_trend_summary_skipped(self):
        text = render_trend_summary({"skipped": "no baseline for grid"})
        assert "SKIPPED: no baseline for grid" in text


class TestTelemetryBundle:
    def test_jsonl_paths_capture_durably(self, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        ledger_path = tmp_path / "ledger.jsonl"
        telemetry = Telemetry(
            spans_path=str(spans_path), ledger_path=str(ledger_path)
        )
        with EstimationService(
            estimator=SyntheticEstimator(), telemetry=telemetry
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
            service.estimate(WORKLOAD, RTX_3060)  # cache hit
        telemetry.close()
        spans = JsonLinesSpanExporter.read(str(spans_path))
        assert canonical_trace_trees(spans)  # parses back into trees
        loaded = AuditLedger.load(str(ledger_path))
        assert loaded.summary() == telemetry.ledger.summary()
        assert loaded.summary()["cache_hit"] == 1

    def test_disabled_telemetry_costs_nothing(self):
        with EstimationService(estimator=SyntheticEstimator()) as service:
            result = service.estimate(WORKLOAD, RTX_3060)
        assert result is not None
