"""Concurrency stress: single-flight dedup and gateway load (slow lane).

The dedup guarantee is all-or-nothing — N concurrent identical requests
must cost exactly one estimation and observe literally the same result
object (or, on failure, the same exception instance).  These tests drive
that window deliberately: the estimator blocks on a gate until every
thread has submitted, so the in-flight table is maximally contended.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.base import Estimator
from repro.core.result import EstimationResult
from repro.errors import EstimationError
from repro.service import (
    EstimationService,
    ServiceGateway,
    SyntheticEstimator,
    generate_traffic,
    replay,
)
from repro.units import GiB
from repro.workload import RTX_3060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV2", "sgd", 8)


class GatedEstimator(Estimator):
    """Blocks every estimate on an event; counts invocations."""

    name = "gated"
    version = "1"

    def __init__(self, fail: bool = False):
        self.gate = threading.Event()
        self.fail = fail
        self.calls = 0
        self._lock = threading.Lock()

    def supports(self, workload):
        return True

    def estimate(self, workload, device):
        with self._lock:
            self.calls += 1
        assert self.gate.wait(timeout=30), "gate never opened"
        if self.fail:
            raise EstimationError("gated failure")
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=GiB,
            runtime_seconds=0.0,
        )


def _submit_from_threads(service, num_threads):
    """num_threads concurrent submits of the identical request."""
    barrier = threading.Barrier(num_threads)
    futures = [None] * num_threads
    errors = [None] * num_threads

    def worker(index):
        barrier.wait(timeout=30)
        try:
            futures[index] = service.submit(WORKLOAD, RTX_3060)
        except BaseException as error:  # pragma: no cover - fails the test
            errors[index] = error

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert all(error is None for error in errors), errors
    return futures


@pytest.mark.slow
class TestSingleFlightStress:
    NUM_THREADS = 32

    def test_n_threads_one_invocation_identical_results(self):
        estimator = GatedEstimator()
        with EstimationService(estimator=estimator, max_workers=4) as service:
            futures = _submit_from_threads(service, self.NUM_THREADS)
            estimator.gate.set()
            results = [future.result(timeout=30) for future in futures]
        assert estimator.calls == 1
        first = results[0]
        assert all(result is first for result in results)
        stats = service.metrics.as_dict()
        assert stats["requests"] == self.NUM_THREADS
        assert stats["computed"] == 1
        assert stats["deduplicated"] == self.NUM_THREADS - 1

    def test_failure_propagates_the_same_exception_to_all_waiters(self):
        estimator = GatedEstimator(fail=True)
        with EstimationService(estimator=estimator, max_workers=4) as service:
            futures = _submit_from_threads(service, self.NUM_THREADS)
            estimator.gate.set()
            exceptions = [future.exception(timeout=30) for future in futures]
        assert estimator.calls == 1
        first = exceptions[0]
        assert isinstance(first, EstimationError)
        assert all(exception is first for exception in exceptions)
        for future in futures:
            with pytest.raises(EstimationError):
                future.result()

    def test_failure_releases_the_slot_for_a_retry(self):
        estimator = GatedEstimator(fail=True)
        estimator.gate.set()  # fail immediately
        with EstimationService(estimator=estimator, max_workers=2) as service:
            with pytest.raises(EstimationError):
                service.estimate(WORKLOAD, RTX_3060)
            estimator.fail = False
            result = service.estimate(WORKLOAD, RTX_3060)
        assert result.peak_bytes == GiB
        assert estimator.calls == 2  # the retry really re-estimated


@pytest.mark.slow
class TestGatewayStress:
    def test_duplicate_storm_costs_one_estimation_per_unique_key(self):
        trace = generate_traffic("duplicate-storm", 400, seed=3)
        estimators = []

        def factory():
            estimator = SyntheticEstimator()
            estimators.append(estimator)
            return estimator

        with ServiceGateway(
            num_shards=4, estimator_factory=factory
        ) as gateway:
            report = replay(trace, gateway)
        assert report.answered == 400
        assert report.errors == 0
        total_calls = sum(estimator.calls for estimator in estimators)
        # hash routing pins each key to one shard: one estimation per key
        assert total_calls == trace.unique_fingerprint_keys()

    def test_accounting_is_exact_under_tight_queues(self):
        trace = generate_traffic("bursty", 300, seed=4, waves=6)
        with ServiceGateway(
            num_shards=2,
            estimator_factory=lambda: SyntheticEstimator(
                work_seconds=0.001
            ),
            max_queue_depth=16,
        ) as gateway:
            report = replay(trace, gateway)
            # done-callbacks may lag the last result(): drain settles them
            assert gateway.drain(timeout=10)
            stats = gateway.stats()
        assert (
            report.answered + report.shed + report.rejected + report.errors
            == 300
        )
        assert stats["gateway"]["shed"] == report.shed
        assert stats["gateway"]["pending"] == 0  # everything settled
        routed = stats["gateway"]["routed_per_shard"]
        assert sum(routed) == 300 - report.shed
