"""CLI surface."""

import json

import pytest

from repro.cli import main


class TestEstimate:
    def test_human_output(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated peak" in out
        assert "GB" in out

    def test_json_output(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "MobileNetV3Small"
        assert payload["estimated_peak_bytes"] > 0

    def test_json_includes_role_breakdown(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "16", "--optimizer", "sgd", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        roles = payload["role_bytes"]
        assert roles["parameter"] > 0
        assert roles["gradient"] > 0
        assert payload["zero_grad_position"] == "pos1"

    def test_custom_capacity(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd",
            "--capacity", "2GiB", "--json",
        ])
        assert code == 0

    def test_pos0_flag(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small", "--batch-size", "16",
            "--zero-grad-position", "pos0", "--json",
        ])
        assert code == 0


class TestOtherCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt2" in out and "VGG16" in out and "Qwen3-4B" in out

    def test_trace_summary(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        code = main([
            "trace", "--model", "MobileNetV3Small", "--batch-size", "8",
            "--optimizer", "sgd", "--iterations", "2",
            "--output", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "num_memory_events" in out

    def test_curve_prints_series(self, capsys):
        code = main([
            "curve", "--model", "MobileNetV3Small", "--batch-size", "8",
            "--optimizer", "sgd", "--points", "50",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) <= 51 + 10  # downsampled (peaks kept)
        ts, tensor, segment = lines[0].split("\t")
        assert int(segment) >= int(tensor)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_devices_table(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "rtx3060" in out and "GeForce RTX 3060" in out
        assert "job budget" in out

    def test_devices_json(self, capsys):
        assert main(["devices", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rtx3060"]["capacity_bytes"] == 12 * 2**30
        assert payload["a100"]["job_budget_bytes"] > 0


class TestServiceCommands:
    def test_batch_table(self, capsys):
        code = main([
            "batch", "--model", "MobileNetV3Small",
            "--batch-sizes", "8,16", "--devices", "rtx3060,rtx4060",
            "--optimizer", "sgd", "--iterations", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "MobileNetV3Small" in out
        assert "fits" in out or "OOM" in out
        assert "requests" in out

    def test_batch_json(self, capsys):
        code = main([
            "batch", "--model", "MobileNetV3Small",
            "--batch-sizes", "8", "--devices", "rtx3060",
            "--optimizer", "sgd", "--iterations", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (cell,) = payload["cells"]
        assert cell["workload"]["model"] == "MobileNetV3Small"
        assert cell["estimated_peak_bytes"] > 0
        assert payload["stats"]["service"]["requests"] == 1

    def test_serve_demo(self, capsys):
        code = main([
            "serve-demo", "--requests", "8", "--unique", "2",
            "--iterations", "2", "--waves", "2", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 8 requests" in out
        stats = json.loads(out[out.index("{") : out.rindex("}") + 1])
        service = stats["service"]
        assert service["requests"] == 8
        # every request resolves exactly once across the three paths
        assert (
            service["computed"]
            + service["cache_hits"]
            + service["deduplicated"]
            == 8
        )
        assert stats["cache"]["size"] == service["computed"]


class TestLoadtest:
    def test_human_output(self, capsys):
        code = main([
            "loadtest", "--scenario", "zipf", "--requests", "40",
            "--shards", "2", "--seed", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'zipf': 40 requests" in out
        assert "cache hit rate" in out
        assert "routed per shard" in out

    def test_json_output_accounts_for_every_request(self, capsys):
        code = main([
            "loadtest", "--scenario", "adversarial", "--requests", "30",
            "--shards", "2", "--max-queue-depth", "4", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "adversarial"
        assert (
            payload["answered"]
            + payload["shed"]
            + payload["rejected"]
            + payload["errors"]
            == 30
        )
        assert payload["rejected"] > 0
        assert payload["stats"]["gateway"]["num_shards"] == 2

    def test_policy_and_scenario_choices_are_validated(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--scenario", "nope"])
        with pytest.raises(SystemExit):
            main(["loadtest", "--policy", "nope"])

    def test_least_loaded_policy_runs(self, capsys):
        code = main([
            "loadtest", "--scenario", "uniform", "--requests", "20",
            "--policy", "least_loaded", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["answered"] == 20

    def test_asyncio_driver_runs(self, capsys):
        code = main([
            "loadtest", "--scenario", "zipf", "--requests", "30",
            "--shards", "2", "--driver", "asyncio", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["answered"] == 30
        assert payload["errors"] == 0

    def test_multiple_drivers_print_comparison_table(self, capsys):
        code = main([
            "loadtest", "--scenario", "zipf", "--requests", "30",
            "--shards", "2", "--driver", "threads", "--driver", "asyncio",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario 'zipf':" in out
        assert "hit rate" in out and "p95 ms" in out and "shed" in out
        assert "threads" in out and "asyncio" in out

    def test_multiple_policies_json_lists_every_run(self, capsys):
        code = main([
            "loadtest", "--scenario", "uniform", "--requests", "20",
            "--shards", "2", "--policy", "hash", "--policy", "random",
            "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["runs"]) == 2
        assert {run["policy"] for run in payload["runs"]} == {
            "hash", "random",
        }
        assert all(run["answered"] == 20 for run in payload["runs"])
