"""CLI surface."""

import json

import pytest

from repro.cli import main


class TestEstimate:
    def test_human_output(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "estimated peak" in out
        assert "GB" in out

    def test_json_output(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "MobileNetV3Small"
        assert payload["estimated_peak_bytes"] > 0

    def test_custom_capacity(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small",
            "--batch-size", "32", "--optimizer", "sgd",
            "--capacity", "2GiB", "--json",
        ])
        assert code == 0

    def test_pos0_flag(self, capsys):
        code = main([
            "estimate", "--model", "MobileNetV3Small", "--batch-size", "16",
            "--zero-grad-position", "pos0", "--json",
        ])
        assert code == 0


class TestOtherCommands:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt2" in out and "VGG16" in out and "Qwen3-4B" in out

    def test_trace_summary(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        code = main([
            "trace", "--model", "MobileNetV3Small", "--batch-size", "8",
            "--optimizer", "sgd", "--iterations", "2",
            "--output", str(path),
        ])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "num_memory_events" in out

    def test_curve_prints_series(self, capsys):
        code = main([
            "curve", "--model", "MobileNetV3Small", "--batch-size", "8",
            "--optimizer", "sgd", "--points", "50",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) <= 51 + 10  # downsampled (peaks kept)
        ts, tensor, segment = lines[0].split("\t")
        assert int(segment) >= int(tensor)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
