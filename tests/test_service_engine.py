"""EstimationService: concurrency, single-flight dedup, batch APIs."""

import threading

import pytest

from repro.core.base import Estimator
from repro.core.estimator import XMemEstimator
from repro.core.result import EstimationResult
from repro.errors import (
    EstimationError,
    RateLimitExceededError,
    RequestRejectedError,
    ServiceClosedError,
)
from repro.service import (
    CacheMiddleware,
    EstimateCache,
    EstimationService,
    RateLimitMiddleware,
    ServiceMiddleware,
    estimate_many,
    sweep,
)
from repro.units import GiB
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

WORKLOAD = WorkloadConfig("gpt2", "adam", 8)


class StubEstimator(Estimator):
    """Instant deterministic estimator; counts and optionally gates calls."""

    name = "stub"
    version = "1"

    def __init__(self, peak_bytes=GiB, gate=None, fail=False):
        self.peak_bytes = peak_bytes
        self.gate = gate  # threading.Event the estimate waits on
        self.fail = fail
        self.calls = 0
        self._lock = threading.Lock()

    def supports(self, workload):
        return True

    def estimate(self, workload, device):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=10), "gate never opened"
        if self.fail:
            raise EstimationError("stub failure")
        return EstimationResult(
            estimator=self.name,
            workload=workload,
            device=device,
            peak_bytes=self.peak_bytes,
            runtime_seconds=0.0,
        )


class TracingStubEstimator(StubEstimator):
    """Trace-capable stub: records the trace objects it was handed."""

    iterations = 2

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.seen_traces = []

    def estimate(self, workload, device, trace=None):
        with self._lock:
            self.seen_traces.append(trace)
        return super().estimate(workload, device)


def make_service(estimator=None, **kwargs):
    estimator = estimator if estimator is not None else StubEstimator()
    kwargs.setdefault("max_workers", 2)
    return EstimationService(estimator=estimator, **kwargs)


class TestEngine:
    def test_cache_hit_returns_identical_object(self):
        with make_service() as service:
            first = service.estimate(WORKLOAD, RTX_3060)
            second = service.estimate(WORKLOAD, RTX_3060)
        assert second is first
        stats = service.stats()
        assert stats["service"]["cache_hits"] == 1
        assert stats["service"]["computed"] == 1
        assert stats["cache"]["size"] == 1

    def test_distinct_requests_do_not_alias(self):
        with make_service() as service:
            a = service.estimate(WORKLOAD, RTX_3060)
            b = service.estimate(WORKLOAD, RTX_4060)
            c = service.estimate(WORKLOAD.with_batch_size(16), RTX_3060)
        assert a is not b and a is not c
        assert service.stats()["service"]["computed"] == 3

    def test_single_flight_deduplicates_concurrent_identicals(self):
        gate = threading.Event()
        stub = StubEstimator(gate=gate)
        with make_service(estimator=stub) as service:
            first = service.submit(WORKLOAD, RTX_3060)
            # the worker is parked on the gate; identical submissions
            # must piggyback instead of spawning their own estimates
            followers = [
                service.submit(WORKLOAD, RTX_3060) for _ in range(5)
            ]
            assert all(f is first for f in followers)
            gate.set()
            results = [f.result(timeout=10) for f in [first, *followers]]
        assert stub.calls == 1
        assert all(r is results[0] for r in results)
        stats = service.stats()["service"]
        assert stats["deduplicated"] == 5
        assert stats["requests"] == 6

    def test_dedup_then_cache_hit_after_completion(self):
        with make_service() as service:
            service.estimate(WORKLOAD, RTX_3060)
            future = service.submit(WORKLOAD, RTX_3060)
            assert future.done()  # answered inline from the cache
        assert service.stats()["service"]["cache_hits"] == 1

    def test_validation_rejection_raises_synchronously(self):
        with make_service() as service:
            with pytest.raises(RequestRejectedError):
                service.submit(WorkloadConfig("nope", "adam", 8), RTX_3060)
        stats = service.stats()["service"]
        assert stats["rejected"] == 1
        assert stats["computed"] == 0

    def test_rate_limit_counted_as_throttled(self):
        cache = EstimateCache()
        with make_service(
            cache=cache,
            middlewares=(
                RateLimitMiddleware(
                    rate_per_second=1, burst=1, clock=lambda: 0.0
                ),
                CacheMiddleware(cache),
            ),
        ) as service:
            service.estimate(WORKLOAD, RTX_3060)
            with pytest.raises(RateLimitExceededError):
                service.submit(WORKLOAD.with_batch_size(16), RTX_3060)
        assert service.stats()["service"]["throttled"] == 1

    def test_estimator_failure_surfaces_through_future(self):
        with make_service(estimator=StubEstimator(fail=True)) as service:
            future = service.submit(WORKLOAD, RTX_3060)
            with pytest.raises(EstimationError):
                future.result(timeout=10)
            # the fingerprint is released: a retry estimates again
            with pytest.raises(EstimationError):
                service.estimate(WORKLOAD, RTX_3060)
        stats = service.stats()
        assert stats["service"]["errors"] == 2
        assert stats["inflight"] == 0
        assert stats["cache"]["size"] == 0

    def test_closed_service_refuses_requests(self):
        service = make_service()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(WORKLOAD, RTX_3060)

    def test_shutdown_race_releases_single_flight_slot(self):
        """If the pool dies between the closed check and the dispatch,
        the future must carry the error and the fingerprint must be
        released — not parked in _inflight forever."""
        service = make_service()
        service._executor.shutdown(wait=True)  # close() without _closed
        future = service.submit(WORKLOAD, RTX_3060)
        with pytest.raises(RuntimeError):
            future.result(timeout=10)
        assert service.stats()["inflight"] == 0

    def test_adopts_cache_from_explicit_middleware_chain(self):
        """stats() and the batch fast path must see the cache that
        actually serves hits, even when only `middlewares` is passed."""
        cache = EstimateCache()
        with make_service(
            middlewares=(CacheMiddleware(cache),)
        ) as service:
            assert service.cache is cache
            service.estimate(WORKLOAD, RTX_3060)
            service.estimate(WORKLOAD, RTX_3060)
            stats = service.stats()["cache"]
        assert stats["size"] == 1 and stats["hits"] == 1

    def test_middleware_may_reenter_service_stats(self):
        """Hooks run outside the engine lock: a middleware observing the
        service itself must not deadlock."""

        class Introspector(ServiceMiddleware):
            def on_request(self, request, ctx):
                ctx.tags["stats"] = service.stats()
                return None

        service = EstimationService(
            estimator=StubEstimator(),
            middlewares=(Introspector(),),
            max_workers=1,
        )
        with service:
            result = service.estimate(WORKLOAD, RTX_3060)
        assert result.peak_bytes == GiB

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            EstimationService(estimator=StubEstimator(), max_workers=0)

    def test_stats_shape(self):
        with make_service() as service:
            service.estimate(WORKLOAD, RTX_3060)
            stats = service.stats()
        assert set(stats) == {"service", "cache", "inflight"}
        latency = stats["service"]["latency_seconds"]
        assert latency["count"] == 1
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p95"] <= latency["max"]


class TestByteIdentical:
    def test_service_matches_direct_estimator(self):
        """Acceptance: the serving layer adds zero numerical drift."""
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 8)
        direct = XMemEstimator(iterations=2).estimate(workload, RTX_3060)
        with EstimationService(
            estimator=XMemEstimator(iterations=2), max_workers=2
        ) as service:
            served = service.estimate(workload, RTX_3060)
        assert served.peak_bytes == direct.peak_bytes
        assert served.detail == direct.detail
        assert served.predicts_oom() == direct.predicts_oom()


class TestBatch:
    def test_estimate_many_preserves_order(self):
        requests = [
            (WORKLOAD, RTX_3060),
            (WORKLOAD.with_batch_size(16), RTX_3060),
            (WORKLOAD, RTX_4060),
        ]
        with make_service() as service:
            results = estimate_many(service, requests, share_profiles=False)
        for (workload, device), result in zip(requests, results):
            assert result.workload == workload
            assert result.device == device

    def test_shared_profiles_profile_each_workload_once(self, monkeypatch):
        profiled = []

        def fake_profile(service, workload):
            profiled.append(workload.to_key())
            return f"trace-{workload.label()}"

        monkeypatch.setattr(
            "repro.service.batch.profile_workload", fake_profile
        )
        stub = TracingStubEstimator()
        requests = [
            (WORKLOAD, RTX_3060),
            (WORKLOAD, RTX_4060),
            (WORKLOAD, RTX_3060.with_init(GiB)),
            (WORKLOAD.with_batch_size(16), RTX_3060),  # singleton: no share
        ]
        with make_service(estimator=stub) as service:
            assert service.accepts_trace
            estimate_many(service, requests)
        assert profiled == [WORKLOAD.to_key()]  # one profile for 3 devices
        shared = f"trace-{WORKLOAD.label()}"
        assert stub.seen_traces.count(shared) == 3
        assert stub.seen_traces.count(None) == 1

    def test_shared_profiles_skip_cached_requests(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            "repro.service.batch.profile_workload",
            lambda service, workload: calls.append(1),
        )
        with make_service() as service:
            service.estimate(WORKLOAD, RTX_3060)
            service.estimate(WORKLOAD, RTX_4060)
            estimate_many(
                service, [(WORKLOAD, RTX_3060), (WORKLOAD, RTX_4060)]
            )
        assert calls == []  # everything was already cached

    def test_shared_profiles_survive_unprofilable_workloads(self):
        """Regression: an unknown model in a multi-device group must not
        crash the eager profiling pass — its cells fail individually."""
        with EstimationService(
            estimator=XMemEstimator(iterations=2), max_workers=2
        ) as service:
            cells = sweep(
                service,
                models=["MobileNetV3Small", "no-such-model"],
                batch_sizes=[4],
                devices=[RTX_3060, RTX_4060],
                optimizer="sgd",
            )
        good = [c for c in cells if c.result is not None]
        bad = [c for c in cells if c.error is not None]
        assert len(good) == 2 and len(bad) == 2
        assert all(c.workload.model == "no-such-model" for c in bad)

    def test_return_exceptions_keeps_good_results(self):
        requests = [
            (WORKLOAD, RTX_3060),
            (WorkloadConfig("nope", "adam", 8), RTX_3060),
            (WORKLOAD.with_batch_size(16), RTX_3060),
        ]
        with make_service() as service:
            results = estimate_many(
                service, requests, share_profiles=False,
                return_exceptions=True,
            )
        assert results[0].peak_bytes == GiB
        assert isinstance(results[1], RequestRejectedError)
        assert results[2].peak_bytes == GiB

    def test_sweep_covers_grid_and_captures_errors(self):
        with make_service() as service:
            cells = sweep(
                service,
                models=["gpt2", "nope"],
                batch_sizes=[8, 16],
                devices=[RTX_3060, RTX_4060],
            )
        assert len(cells) == 8  # 2 models x 2 batches x 2 devices
        good = [c for c in cells if c.result is not None]
        bad = [c for c in cells if c.error is not None]
        assert len(good) == 4 and len(bad) == 4
        assert all(c.workload.model == "nope" for c in bad)
        assert all(c.fits for c in good)
        assert "estimated_peak_bytes" in good[0].as_dict()
        assert "error" in bad[0].as_dict()


class TestConcurrencyStress:
    def test_many_threads_many_workloads(self):
        """Hammer one service from 8 threads; counters must reconcile."""
        stub = StubEstimator()
        workloads = [WORKLOAD.with_batch_size(b) for b in (1, 2, 4, 8)]
        errors = []

        def client(seed):
            try:
                for index in range(25):
                    workload = workloads[(seed + index) % len(workloads)]
                    out = service.estimate(workload, RTX_3060)
                    assert out.peak_bytes == GiB
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with make_service(estimator=stub, max_workers=4) as service:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert not errors
        stats = service.stats()["service"]
        assert stats["requests"] == 200
        # every request was answered exactly once, one way or another
        assert (
            stats["computed"] + stats["cache_hits"] + stats["deduplicated"]
            == 200
        )
        # at most one real estimate per distinct workload
        assert stub.calls == stats["computed"] == len(workloads)
