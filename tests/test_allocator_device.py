"""Device-level allocator: capacity, fragmentation, coalescing."""

import pytest

from repro.allocator.device import DeviceAllocator
from repro.errors import DeviceOutOfMemoryError, InvalidFreeError
from repro.units import KiB, MiB


class TestAllocFree:
    def test_simple_alloc(self):
        device = DeviceAllocator(capacity=10 * MiB)
        addr = device.alloc(1 * MiB)
        assert addr == 0
        assert device.used_bytes == 1 * MiB

    def test_sequential_addresses(self):
        device = DeviceAllocator(capacity=10 * MiB)
        a = device.alloc(1 * MiB)
        b = device.alloc(1 * MiB)
        assert b == a + 1 * MiB

    def test_free_returns_size(self):
        device = DeviceAllocator(capacity=10 * MiB)
        addr = device.alloc(1 * MiB)
        assert device.free(addr) == 1 * MiB
        assert device.used_bytes == 0

    def test_alignment(self):
        device = DeviceAllocator(capacity=10 * MiB)
        device.alloc(100)  # rounded to 512
        assert device.used_bytes == 512

    def test_double_free_raises(self):
        device = DeviceAllocator(capacity=10 * MiB)
        addr = device.alloc(1 * MiB)
        device.free(addr)
        with pytest.raises(InvalidFreeError):
            device.free(addr)

    def test_unknown_free_raises(self):
        device = DeviceAllocator(capacity=10 * MiB)
        with pytest.raises(InvalidFreeError):
            device.free(12345)

    def test_nonpositive_alloc_rejected(self):
        device = DeviceAllocator(capacity=10 * MiB)
        with pytest.raises(ValueError):
            device.alloc(0)


class TestCapacity:
    def test_oom_when_full(self):
        device = DeviceAllocator(capacity=2 * MiB)
        device.alloc(2 * MiB)
        with pytest.raises(DeviceOutOfMemoryError):
            device.alloc(512)

    def test_oom_carries_diagnostics(self):
        device = DeviceAllocator(capacity=1 * MiB)
        with pytest.raises(DeviceOutOfMemoryError) as excinfo:
            device.alloc(2 * MiB)
        assert excinfo.value.requested == 2 * MiB
        assert excinfo.value.capacity == 1 * MiB

    def test_reserved_carveout(self):
        device = DeviceAllocator(capacity=4 * MiB, reserved=3 * MiB)
        with pytest.raises(DeviceOutOfMemoryError):
            device.alloc(2 * MiB)
        device.alloc(1 * MiB)  # fits in the remaining 1 MiB

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DeviceAllocator(capacity=0)

    def test_invalid_reservation(self):
        with pytest.raises(ValueError):
            DeviceAllocator(capacity=MiB, reserved=2 * MiB)

    def test_peak_tracking(self):
        device = DeviceAllocator(capacity=10 * MiB)
        a = device.alloc(4 * MiB)
        device.alloc(2 * MiB)
        device.free(a)
        assert device.stats.peak_used == 6 * MiB
        assert device.used_bytes == 2 * MiB


class TestFragmentation:
    def test_fragmentation_blocks_large_alloc(self):
        device = DeviceAllocator(capacity=3 * MiB)
        a = device.alloc(1 * MiB)
        b = device.alloc(1 * MiB)
        device.alloc(1 * MiB)
        device.free(a)
        device.free(b)  # coalesces with a -> 2 MiB contiguous
        addr = device.alloc(2 * MiB)
        assert addr == 0

    def test_non_adjacent_frees_stay_fragmented(self):
        device = DeviceAllocator(capacity=3 * MiB)
        a = device.alloc(1 * MiB)
        device.alloc(1 * MiB)  # keeps the middle occupied
        c = device.alloc(1 * MiB)
        device.free(a)
        device.free(c)
        assert device.free_bytes == 2 * MiB
        with pytest.raises(DeviceOutOfMemoryError):
            device.alloc(2 * MiB)
        assert device.fragmentation() == pytest.approx(0.5)

    def test_can_alloc_probe(self):
        device = DeviceAllocator(capacity=2 * MiB)
        assert device.can_alloc(2 * MiB)
        device.alloc(1 * MiB)
        assert not device.can_alloc(2 * MiB)
        assert device.can_alloc(1 * MiB)

    def test_coalesce_three_way(self):
        device = DeviceAllocator(capacity=3 * MiB)
        a = device.alloc(1 * MiB)
        b = device.alloc(1 * MiB)
        c = device.alloc(1 * MiB)
        device.free(a)
        device.free(c)
        device.free(b)  # merges left and right in one insert
        assert device.largest_free_range == 3 * MiB

    def test_reuse_freed_range_first_fit(self):
        device = DeviceAllocator(capacity=4 * MiB)
        a = device.alloc(1 * MiB)
        device.alloc(1 * MiB)
        device.free(a)
        new_addr = device.alloc(512 * KiB)
        assert new_addr == a  # first fit lands in the freed hole
