"""Analyzer, Orchestrator, and Simulator over real CPU traces."""

import pytest

from repro.core.analyzer import AnalyzedTrace, Analyzer
from repro.core.attribution import attribute_blocks, operator_filter
from repro.core.lifecycle import reconstruct_lifecycles
from repro.core.orchestrator import (
    EventKind,
    MemoryOrchestrator,
    OrchestratedSequence,
    MemoryOp,
    raw_sequence,
)
from repro.core.simulator import MemorySimulator
from repro.errors import TraceError
from repro.framework.tensor import TensorRole
from repro.trace.builder import TraceBuilder
from repro.trace.events import EventCategory, SpanEvent
from repro.units import MiB


@pytest.fixture(scope="module")
def analyzed(tiny_trace) -> AnalyzedTrace:
    return Analyzer().analyze(tiny_trace)


class TestAttribution:
    def test_blocks_get_operators(self, tiny_trace):
        report = reconstruct_lifecycles(tiny_trace.memory_events)
        attributed = attribute_blocks(tiny_trace, report.blocks)
        with_ops = [b for b in attributed if b.op is not None]
        assert len(with_ops) > len(attributed) * 0.5

    def test_module_paths_recovered(self, tiny_trace):
        report = reconstruct_lifecycles(tiny_trace.memory_events)
        attributed = attribute_blocks(tiny_trace, report.blocks)
        paths = {b.module_path for b in attributed if b.module_path}
        assert any("conv1" in p for p in paths)

    def test_backward_flag(self, tiny_trace):
        report = reconstruct_lifecycles(tiny_trace.memory_events)
        attributed = attribute_blocks(tiny_trace, report.blocks)
        assert any(b.backward for b in attributed)
        assert any(not b.backward for b in attributed)

    def test_iterations_assigned(self, tiny_trace):
        report = reconstruct_lifecycles(tiny_trace.memory_events)
        attributed = attribute_blocks(tiny_trace, report.blocks)
        iterations = {b.iteration for b in attributed}
        assert {0, 1, 2} <= iterations
        assert None in iterations  # Module.to happens before iteration 0

    def test_operator_filter_keeps_annotated(self, tiny_trace):
        report = reconstruct_lifecycles(tiny_trace.memory_events)
        attributed = attribute_blocks(tiny_trace, report.blocks)
        kept = operator_filter(attributed)
        assert kept
        for item in kept:
            assert item.op is not None or item.annotation is not None


class TestAnalyzer:
    def test_role_classification_covers_all_roles(self, analyzed):
        roles = {b.role for b in analyzed.blocks}
        assert TensorRole.PARAMETER in roles
        assert TensorRole.BATCH_DATA in roles
        assert TensorRole.GRADIENT in roles
        assert TensorRole.OPTIMIZER_STATE in roles
        assert TensorRole.ACTIVATION in roles
        assert TensorRole.TEMPORARY in roles

    def test_parameter_bytes_match_model(self, analyzed):
        from tests.conftest import TinyConvNet

        params = sum(
            b.block.size
            for b in analyzed.blocks_by_role(TensorRole.PARAMETER)
        )
        assert params == TinyConvNet().parameter_bytes()

    def test_optimizer_state_is_persistent_and_param_sized(self, analyzed):
        states = analyzed.blocks_by_role(TensorRole.OPTIMIZER_STATE)
        assert states
        params = sum(
            b.block.size
            for b in analyzed.blocks_by_role(TensorRole.PARAMETER)
        )
        assert sum(b.block.size for b in states) == 2 * params  # Adam

    def test_gradients_identified_every_iteration(self, analyzed):
        grads = analyzed.blocks_by_role(TensorRole.GRADIENT)
        iterations = {g.iteration for g in grads}
        assert {0, 1, 2} <= iterations

    def test_empty_trace_rejected(self):
        builder = TraceBuilder()
        builder.annotate("ProfilerStep#0", ts=0, dur=10)
        trace = builder.finish()
        with pytest.raises(TraceError):
            Analyzer().analyze(trace)

    def test_trace_without_steps_rejected(self):
        builder = TraceBuilder()
        builder.begin_span("x", EventCategory.CPU_OP, ts=0)
        builder.record_alloc(1, addr=1, nbytes=100)
        builder.end_span(2)
        trace = builder.finish()
        with pytest.raises(TraceError):
            Analyzer().analyze(trace)

    def test_role_bytes_accounting(self, analyzed):
        totals = analyzed.role_bytes()
        assert sum(totals.values()) == sum(
            b.block.size for b in analyzed.blocks if b.role is not None
        )


class TestOrchestrator:
    def test_parameters_become_persistent(self, analyzed):
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        param_ids = {
            b.block.block_id
            for b in analyzed.blocks_by_role(TensorRole.PARAMETER)
        }
        frees = {
            e.block_id for e in sequence.events if e.kind is EventKind.FREE
        }
        assert not (param_ids & frees)

    def test_optimizer_state_persistent(self, analyzed):
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        state_ids = {
            b.block.block_id
            for b in analyzed.blocks_by_role(TensorRole.OPTIMIZER_STATE)
        }
        frees = {
            e.block_id for e in sequence.events if e.kind is EventKind.FREE
        }
        assert not (state_ids & frees)

    def test_gradient_frees_snapped_into_zero_grad_windows(self, analyzed):
        """Rule 4: the CPU trace frees gradients late (iteration tail);
        the orchestrator realigns them with the zero_grad call."""
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        grad_ids = {
            b.block.block_id
            for b in analyzed.blocks_by_role(TensorRole.GRADIENT)
            if b.block.free_ts is not None
        }
        windows = [(w.ts, w.end) for w in analyzed.zero_grads]
        snapped = [
            e
            for e in sequence.events
            if e.kind is EventKind.FREE and e.block_id in grad_ids
        ]
        assert snapped
        for event in snapped:
            assert any(start <= event.ts <= end for start, end in windows)

    def test_adjustment_counters(self, analyzed):
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        # parameters were already persistent in the CPU trace (no change),
        # but gradient deallocations must have been realigned
        assert sequence.adjustments["parameters_persistent"] == 0
        assert sequence.adjustments["gradient_zero_grad_alignment"] > 0

    def test_raw_sequence_applies_no_rules(self, analyzed):
        sequence = raw_sequence(analyzed)
        assert sequence.adjustments == {}

    def test_events_sorted(self, analyzed):
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        keys = [e.sort_key() for e in sequence.events]
        assert keys == sorted(keys)

    def test_orchestrated_peak_below_raw_peak(self, analyzed):
        """Deferred-free repair lowers the replayed peak (POS1 traces)."""
        orchestrated = MemorySimulator().replay(
            MemoryOrchestrator().orchestrate(analyzed)
        )
        raw = MemorySimulator().replay(raw_sequence(analyzed))
        assert orchestrated.peak_reserved_bytes <= raw.peak_reserved_bytes


class TestOrchestratorEdges:
    """Synthetic AnalyzedTraces pin down the rule edge cases."""

    @staticmethod
    def make_analyzed(blocks, zero_grads=(), iterations=()):
        """An AnalyzedTrace from (role, alloc_ts, free_ts, size) tuples."""
        from repro.core.attribution import AttributedBlock
        from repro.core.lifecycle import MemoryBlock

        attributed = []
        for index, (role, alloc_ts, free_ts, size) in enumerate(blocks):
            item = AttributedBlock(
                block=MemoryBlock(
                    addr=index + 1,
                    size=size,
                    alloc_ts=alloc_ts,
                    free_ts=free_ts,
                )
            )
            item.role = role
            attributed.append(item)
        return AnalyzedTrace(
            trace=None,
            blocks=attributed,
            iterations=[
                SpanEvent("ProfilerStep", EventCategory.USER_ANNOTATION,
                          ts=start, dur=end - start)
                for start, end in iterations
            ],
            zero_grads=[
                SpanEvent("zero_grad", EventCategory.USER_ANNOTATION,
                          ts=start, dur=end - start)
                for start, end in zero_grads
            ],
            optimizer_steps=[],
        )

    def test_tail_gradient_after_last_zero_grad_stays_persistent(self):
        """Rule 4's tail case: a gradient allocated after the final
        zero_grad has no clearing call left — it must persist, and the
        realignment must be counted as an adjustment."""
        analyzed = self.make_analyzed(
            [(TensorRole.GRADIENT, 50, 60, MiB)],
            zero_grads=[(10, 20)],  # the only zero_grad ends before 50
        )
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        assert [e.kind for e in sequence.events] == [EventKind.ALLOC]
        assert sequence.persistent_bytes == MiB
        assert sequence.adjustments["gradient_zero_grad_alignment"] == 1

    def test_gradient_snapped_to_next_zero_grad(self):
        analyzed = self.make_analyzed(
            [(TensorRole.GRADIENT, 5, 95, MiB)],
            zero_grads=[(30, 40)],
        )
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        free = next(e for e in sequence.events if e.kind is EventKind.FREE)
        assert 30 <= free.ts <= 40  # snapped into the window, not ts=95
        assert sequence.adjustments["gradient_zero_grad_alignment"] == 1

    def test_gradient_freed_before_zero_grad_trusts_trace(self):
        """An activation gradient dying inside backward keeps its traced
        free — the rule must not stretch its lifetime to the zero_grad."""
        analyzed = self.make_analyzed(
            [(TensorRole.GRADIENT, 5, 10, MiB)],
            zero_grads=[(30, 40)],
        )
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        free = next(e for e in sequence.events if e.kind is EventKind.FREE)
        assert free.ts == 10
        assert sequence.adjustments["gradient_zero_grad_alignment"] == 0

    def test_adjustment_counters_count_only_changes(self):
        """A parameter the trace already left persistent is no adjustment;
        one with a traced free becomes persistent and counts."""
        analyzed = self.make_analyzed([
            (TensorRole.PARAMETER, 1, None, MiB),  # already persistent
            (TensorRole.PARAMETER, 2, 80, MiB),  # trace freed it late
        ])
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        assert sequence.adjustments["parameters_persistent"] == 1
        assert sequence.persistent_bytes == 2 * MiB
        assert not any(e.kind is EventKind.FREE for e in sequence.events)

    def test_raw_sequence_keeps_tail_gradient_lifecycle_verbatim(self):
        """The ablation path must not inherit rule 4: the CPU trace's own
        (late or absent) frees replay unchanged."""
        analyzed = self.make_analyzed(
            [
                (TensorRole.GRADIENT, 50, 60, MiB),  # traced free kept
                (TensorRole.GRADIENT, 70, None, MiB),  # traced persistent
            ],
            zero_grads=[(10, 20)],
        )
        sequence = raw_sequence(analyzed)
        assert sequence.adjustments == {}
        frees = [e for e in sequence.events if e.kind is EventKind.FREE]
        assert [e.ts for e in frees] == [60]
        assert sequence.persistent_bytes == MiB

    def test_raw_vs_orchestrated_peak_on_tail_gradients(self):
        """Persistent tail gradients are why POS0 raises the peak: the
        orchestrated replay must carry them, the raw replay must not."""
        blocks = [
            (TensorRole.GRADIENT, 50, 60, 8 * MiB),
            (TensorRole.ACTIVATION, 55, 58, 8 * MiB),
        ]
        analyzed = self.make_analyzed(blocks, zero_grads=[(10, 20)])
        orchestrated = MemorySimulator().replay(
            MemoryOrchestrator().orchestrate(analyzed)
        )
        raw = MemorySimulator().replay(raw_sequence(analyzed))
        # raw frees the gradient at ts=60; orchestration keeps it alive
        assert orchestrated.timeline.points[-1].allocated_bytes > (
            raw.timeline.points[-1].allocated_bytes
        )


class TestSimulator:
    def make_sequence(self, ops) -> OrchestratedSequence:
        events = [
            MemoryOp(ts=ts, kind=kind, block_id=bid, size=size)
            for ts, kind, bid, size in ops
        ]
        return OrchestratedSequence(
            events=events, horizon=max(e.ts for e in events) + 1,
            num_blocks=len({e.block_id for e in events}),
            persistent_bytes=0,
        )

    def test_replay_tracks_peak(self):
        sequence = self.make_sequence([
            (1, EventKind.ALLOC, 1, 5 * MiB),
            (2, EventKind.ALLOC, 2, 5 * MiB),
            (3, EventKind.FREE, 1, 5 * MiB),
            (4, EventKind.FREE, 2, 5 * MiB),
        ])
        result = MemorySimulator().replay(sequence)
        assert not result.oom
        assert result.peak_allocated_bytes >= 10 * MiB
        assert result.peak_reserved_bytes >= result.peak_allocated_bytes

    def test_capacity_triggers_oom(self):
        sequence = self.make_sequence([
            (1, EventKind.ALLOC, 1, 30 * MiB),
            (2, EventKind.ALLOC, 2, 30 * MiB),
        ])
        result = MemorySimulator(capacity_bytes=40 * MiB).replay(sequence)
        assert result.oom
        assert result.oom_ts == 2

    def test_tensor_vs_segment_accounting(self):
        sequence = self.make_sequence([(1, EventKind.ALLOC, 1, 512)])
        result = MemorySimulator().replay(sequence)
        assert result.peak("tensor") == 512
        assert result.peak("segment") == 2 * MiB

    def test_unknown_accounting_mode(self):
        sequence = self.make_sequence([(1, EventKind.ALLOC, 1, 512)])
        result = MemorySimulator().replay(sequence)
        with pytest.raises(ValueError):
            result.peak("vibes")

    def test_free_of_dropped_block_skipped_after_oom(self):
        sequence = self.make_sequence([
            (1, EventKind.ALLOC, 1, 30 * MiB),
            (2, EventKind.ALLOC, 2, 30 * MiB),
            (3, EventKind.FREE, 2, 30 * MiB),
        ])
        result = MemorySimulator(capacity_bytes=40 * MiB).replay(sequence)
        assert result.oom  # and no InvalidFreeError from block 2's free

    def test_two_level_vs_single_level(self):
        """The reclaim chain lets a capped replay survive where the
        single-level (DNNMem-style) simulation declares OOM."""
        ops = [
            (1, EventKind.ALLOC, 1, 30 * MiB),
            (2, EventKind.FREE, 1, 30 * MiB),
            (3, EventKind.ALLOC, 2, 40 * MiB),
        ]
        sequence = self.make_sequence(ops)
        two_level = MemorySimulator(capacity_bytes=50 * MiB).replay(sequence)
        single = MemorySimulator(
            capacity_bytes=50 * MiB, two_level=False
        ).replay(sequence)
        assert not two_level.oom
        assert single.oom
