"""Runtime: clock, backends, sinks, NVML sampler, ground truth."""

import pytest

from repro.allocator.caching import CachingAllocator
from repro.allocator.device import DeviceAllocator
from repro.allocator.stats import TimelineRecorder
from repro.errors import InvalidFreeError
from repro.framework.plan import OpSpec
from repro.framework.tensor import TensorMeta, TensorRole
from repro.runtime.backend import CpuBackend, GpuBackend
from repro.runtime.clock import VirtualClock
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.runtime.nvml import sample_timeline, sampled_peak
from repro.runtime.sink import AllocatorSink, CpuProfilingSink, NullSink
from repro.trace.builder import TraceBuilder
from repro.units import GiB, MiB
from tests.conftest import tiny_spec


class TestClock:
    def test_monotonic(self):
        clock = VirtualClock()
        assert clock.advance(10) == 10
        assert clock.tick() == 11

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


def conv_op(out_shape=(4, 16, 32, 32), workspace=1 * MiB):
    return OpSpec(
        op_id=1,
        name="aten::convolution",
        module_path="m.conv",
        output=TensorMeta(out_shape),
        inputs=(0,),
        workspace_bytes=workspace,
        backward_workspace_bytes=workspace,
        flops=10**8,
    )


def relu_op(inplace=False):
    return OpSpec(
        op_id=2,
        name="aten::relu",
        module_path="m.act",
        output=TensorMeta((4, 16)),
        inputs=(1,),
        fusible=True,
        inplace=inplace,
    )


class TestBackends:
    def test_cpu_materializes_everything(self):
        exec_op = CpuBackend().resolve(relu_op())
        assert exec_op.materialize_output

    def test_cpu_conv_uses_threaded_im2col(self):
        exec_op = CpuBackend().resolve(conv_op(workspace=1 * MiB))
        assert exec_op.workspace_bytes == CpuBackend.num_threads * MiB

    def test_gpu_fusion_opt_in(self):
        eager = GpuBackend(seed=0).resolve(relu_op())
        fused = GpuBackend(seed=0, fuse_elementwise=True).resolve(relu_op())
        assert eager.materialize_output
        assert not fused.materialize_output

    def test_gpu_conv_workspace_bounded(self):
        exec_op = GpuBackend(seed=1).resolve(conv_op())
        assert 256 * 1024 <= exec_op.workspace_bytes <= GpuBackend.MAX_CONV_WORKSPACE

    def test_gpu_algo_choice_sticky_per_shape(self):
        backend = GpuBackend(seed=3)
        first = backend.resolve(conv_op())
        second = backend.resolve(conv_op())
        assert first.workspace_bytes == second.workspace_bytes

    def test_gpu_seed_changes_algorithms(self):
        big = conv_op(out_shape=(8, 64, 64, 64))  # 8 MiB output
        sizes = {
            GpuBackend(seed=s).resolve(big).workspace_bytes
            for s in range(8)
        }
        assert len(sizes) > 1

    def test_gpu_matmul_registers_cublas_state(self):
        op = OpSpec(
            op_id=1, name="aten::addmm", module_path="m.fc",
            output=TensorMeta((4, 16)), inputs=(0,),
        )
        exec_op = GpuBackend(seed=0).resolve(op)
        assert exec_op.library_state is not None
        tag, size = exec_op.library_state
        assert tag == "cublas.workspace" and size > 0

    def test_gpu_faster_than_cpu(self):
        cpu = CpuBackend().resolve(conv_op())
        gpu = GpuBackend(seed=0).resolve(conv_op())
        assert gpu.duration_us < cpu.duration_us


class TestSinks:
    def test_cpu_sink_emits_trace_events(self):
        builder = TraceBuilder()
        builder.begin_span("s", __import__("repro.trace.events", fromlist=["EventCategory"]).EventCategory.USER_ANNOTATION, ts=0)
        sink = CpuProfilingSink(builder)
        handle = sink.alloc(1000, TensorRole.ACTIVATION, ts=1)
        sink.free(handle, ts=2)
        builder.end_span(3)
        trace = builder.finish()
        assert len(trace.memory_events) == 2
        assert trace.memory_events[0].nbytes == 1000
        assert trace.memory_events[1].nbytes == -1000

    def test_cpu_sink_reuses_addresses(self):
        builder = TraceBuilder()
        from repro.trace.events import EventCategory

        builder.begin_span("s", EventCategory.USER_ANNOTATION, ts=0)
        sink = CpuProfilingSink(builder)
        a = sink.alloc(512, TensorRole.TEMPORARY, ts=1)
        sink.free(a, ts=2)
        sink.alloc(2048, TensorRole.TEMPORARY, ts=3)  # different size!
        builder.end_span(4)
        trace = builder.finish()
        addrs = [e.addr for e in trace.memory_events]
        assert addrs[0] == addrs[2]  # address reuse the Analyzer must handle

    def test_cpu_sink_double_free(self):
        builder = TraceBuilder()
        from repro.trace.events import EventCategory

        builder.begin_span("s", EventCategory.USER_ANNOTATION, ts=0)
        sink = CpuProfilingSink(builder)
        handle = sink.alloc(512, TensorRole.TEMPORARY, ts=1)
        sink.free(handle, ts=2)
        with pytest.raises(InvalidFreeError):
            sink.free(handle, ts=3)

    def test_allocator_sink_tracks_roles(self):
        allocator = CachingAllocator(DeviceAllocator(capacity=GiB))
        sink = AllocatorSink(allocator)
        handle = sink.alloc(1 * MiB, TensorRole.PARAMETER, ts=1)
        assert sink.role_bytes[TensorRole.PARAMETER] == 1 * MiB
        sink.free(handle, ts=2)
        assert sink.role_bytes[TensorRole.PARAMETER] == 0

    def test_null_sink_peak(self):
        sink = NullSink()
        a = sink.alloc(100, TensorRole.TEMPORARY, ts=0)
        sink.alloc(200, TensorRole.TEMPORARY, ts=1)
        sink.free(a, ts=2)
        assert sink.peak_bytes == 300
        assert sink.live_bytes == 200


class TestNvmlSampling:
    def make_timeline(self, points):
        timeline = TimelineRecorder()
        for ts, reserved in points:
            timeline.record(ts, 0, reserved)
        return timeline

    def test_sampling_grid(self):
        timeline = self.make_timeline([(0, 100), (2500, 300)])
        samples = sample_timeline(timeline, interval_us=1000)
        values = {s.ts: s.used_bytes for s in samples}
        assert values[0] == 100
        assert values[2000] == 100
        assert values[3000] == 300

    def test_short_spike_between_samples_is_missed(self):
        timeline = self.make_timeline([(0, 100), (1100, 900), (1200, 100)])
        assert sampled_peak(timeline, interval_us=1000) == 100

    def test_sustained_peak_is_caught(self):
        timeline = self.make_timeline([(0, 100), (1100, 900), (3500, 100)])
        assert sampled_peak(timeline, interval_us=1000) == 900

    def test_base_bytes_offset(self):
        timeline = self.make_timeline([(0, 100)])
        assert sampled_peak(timeline, base_bytes=50) == 150

    def test_empty_timeline(self):
        assert sampled_peak(TimelineRecorder()) == 0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            sample_timeline(TimelineRecorder(), interval_us=0)


class TestGroundTruth:
    def test_tiny_model_fits(self):
        result = run_gpu_ground_truth(
            tiny_spec(), batch_size=4, optimizer="adam",
            capacity_bytes=1 * GiB, seed=1,
        )
        assert not result.oom
        assert result.completed_iterations == 2
        assert result.nvml_peak_bytes <= result.peak_reserved_bytes
        assert result.peak_reserved_bytes >= result.peak_allocated_bytes

    def test_oom_under_tight_capacity(self):
        result = run_gpu_ground_truth(
            tiny_spec(), batch_size=64, optimizer="adam",
            capacity_bytes=16 * MiB, seed=1,
        )
        assert result.oom
        assert result.completed_iterations < 2

    def test_optimizer_states_counted(self):
        adam = run_gpu_ground_truth(
            tiny_spec(), batch_size=4, optimizer="adam",
            capacity_bytes=GiB, seed=1,
        )
        sgd = run_gpu_ground_truth(
            tiny_spec(), batch_size=4, optimizer="sgd",
            capacity_bytes=GiB, seed=1,
        )
        assert adam.optimizer_state_bytes > 0
        assert sgd.optimizer_state_bytes == 0
        # segment rounding can hide the tiny model's state bytes in the
        # reserved series; the tensor series must show them
        assert adam.peak_allocated_bytes > sgd.peak_allocated_bytes

    def test_seed_jitter_changes_peak(self):
        peaks = {
            run_gpu_ground_truth(
                tiny_spec(), batch_size=64, optimizer="sgd",
                capacity_bytes=GiB, seed=s,
            ).peak_allocated_bytes
            for s in range(6)
        }
        assert len(peaks) > 1

    def test_batch_scales_peak(self):
        small = run_gpu_ground_truth(
            tiny_spec(), batch_size=2, optimizer="sgd",
            capacity_bytes=GiB, seed=1,
        )
        large = run_gpu_ground_truth(
            tiny_spec(), batch_size=32, optimizer="sgd",
            capacity_bytes=GiB, seed=1,
        )
        assert large.nvml_peak_bytes > small.nvml_peak_bytes
