"""Rounding and segment-sizing policies (paper §3.4 'Round up'/'Segment')."""

import pytest

from repro.allocator.constants import DEFAULT_CONFIG, AllocatorConfig
from repro.allocator.rounding import is_small_request, round_size, segment_size
from repro.units import KiB, MiB


class TestRoundSize:
    def test_minimum_is_512(self):
        assert round_size(1, DEFAULT_CONFIG) == 512
        assert round_size(511, DEFAULT_CONFIG) == 512

    def test_exact_multiple_unchanged(self):
        assert round_size(1024, DEFAULT_CONFIG) == 1024

    def test_rounds_to_next_multiple(self):
        assert round_size(513, DEFAULT_CONFIG) == 1024
        assert round_size(1025, DEFAULT_CONFIG) == 1536

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            round_size(0, DEFAULT_CONFIG)
        with pytest.raises(ValueError):
            round_size(-5, DEFAULT_CONFIG)

    def test_large_sizes_stay_aligned(self):
        assert round_size(20 * MiB + 1, DEFAULT_CONFIG) % 512 == 0


class TestPoolBoundary:
    def test_small_request(self):
        assert is_small_request(1 * MiB, DEFAULT_CONFIG)

    def test_large_request(self):
        assert not is_small_request(1 * MiB + 512, DEFAULT_CONFIG)


class TestSegmentSize:
    def test_small_requests_get_2mib_segments(self):
        assert segment_size(512, DEFAULT_CONFIG) == 2 * MiB
        assert segment_size(1 * MiB, DEFAULT_CONFIG) == 2 * MiB

    def test_medium_requests_get_20mib_buffers(self):
        assert segment_size(1 * MiB + 512, DEFAULT_CONFIG) == 20 * MiB
        assert segment_size(9 * MiB, DEFAULT_CONFIG) == 20 * MiB

    def test_boundary_at_min_large_alloc(self):
        just_below = 10 * MiB - 512
        assert segment_size(just_below, DEFAULT_CONFIG) == 20 * MiB
        assert segment_size(10 * MiB, DEFAULT_CONFIG) == 10 * MiB

    def test_big_requests_round_to_2mib(self):
        assert segment_size(21 * MiB, DEFAULT_CONFIG) == 22 * MiB
        assert segment_size(20 * MiB, DEFAULT_CONFIG) == 20 * MiB

    def test_paper_example_20mb_for_10mb_tensor(self):
        # §2.2.2 / §6.4: a caching allocator may request a 20MB block for
        # a 10MB-ish tensor need
        assert segment_size(round_size(6 * MiB, DEFAULT_CONFIG), DEFAULT_CONFIG) == 20 * MiB


class TestConfigValidation:
    def test_custom_config(self):
        config = AllocatorConfig(min_block_size=256)
        assert round_size(100, config) == 256

    def test_invalid_small_boundary(self):
        with pytest.raises(ValueError):
            AllocatorConfig(small_size=4 * MiB, small_buffer=2 * MiB)

    def test_invalid_min_block(self):
        with pytest.raises(ValueError):
            AllocatorConfig(min_block_size=0)

    def test_invalid_large_boundary(self):
        with pytest.raises(ValueError):
            AllocatorConfig(min_large_alloc=30 * MiB, large_buffer=20 * MiB)

    def test_tensorflow_flavoured_config(self):
        # the BFC core is framework-agnostic (§6.4) — e.g. 256 B rounding
        config = AllocatorConfig(min_block_size=256, small_size=512 * KiB)
        assert round_size(300, config) == 512
        assert is_small_request(512 * KiB, config)
