"""Evaluation: metrics Eqs. (1)-(8), two-round validation, drivers."""

import pytest

from repro.eval.metrics import (
    ValidationOutcome,
    median_relative_error,
    memory_conservation_potential,
    probability_of_estimation_failure,
    relative_error,
    score_outcomes,
)
from repro.eval.reporting import BoxStats, quadrant_summary
from repro.eval.validation import GroundTruthCache, validate
from repro.eval.workloads import (
    CNN_BATCH_SIZES,
    SMALL_BATCH_SIZES,
    anova_grid,
    batch_sizes_for,
    monte_carlo_samples,
    rq5_grid,
)
from repro.units import GiB, MiB
from repro.workload import RTX_3060, DeviceSpec, WorkloadConfig


def make_outcome(
    est_peak=4 * GiB,
    oom_pred=False,
    oom1=False,
    m_peak1=4 * GiB,
    c1=True,
    ran_round2=True,
    oom2=False,
    m_peak2=None,
    c2=True,
    supported=True,
    device=RTX_3060,
):
    return ValidationOutcome(
        estimator="test",
        workload=WorkloadConfig("gpt2", "adam", 8),
        device=device,
        run_index=0,
        supported=supported,
        est_peak=est_peak,
        oom_pred=oom_pred,
        oom1=oom1,
        m_peak1=None if oom1 else m_peak1,
        c1=c1,
        ran_round2=ran_round2,
        oom2=oom2,
        m_peak2=m_peak2,
        c2=c2,
        runtime_seconds=1.0,
    )


class TestErrorEquation:
    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.10)
        assert relative_error(90, 100) == pytest.approx(0.10)

    def test_invalid_truth(self):
        with pytest.raises(ValueError):
            relative_error(10, 0)

    def test_round2_peak_preferred(self):
        """Eq. (3): error uses M_peak2 when round 2 completed."""
        outcome = make_outcome(
            est_peak=100, m_peak1=200, m_peak2=110, oom2=False
        )
        assert outcome.error == pytest.approx(abs(100 - 110) / 110)

    def test_round1_peak_on_round2_oom(self):
        outcome = make_outcome(
            est_peak=100, m_peak1=200, oom2=True, m_peak2=None, c2=False
        )
        assert outcome.error == pytest.approx(0.5)

    def test_no_error_when_round1_oomed(self):
        outcome = make_outcome(oom1=True, ran_round2=False, oom2=None)
        assert outcome.error is None

    def test_unsupported_has_no_error(self):
        outcome = make_outcome(supported=False)
        assert outcome.error is None


class TestPef:
    def test_all_pass(self):
        outcomes = [make_outcome(c2=True)] * 4
        assert probability_of_estimation_failure(outcomes) == 0.0

    def test_half_fail(self):
        outcomes = [make_outcome(c2=True), make_outcome(c2=False)]
        assert probability_of_estimation_failure(outcomes) == 0.5

    def test_unsupported_excluded(self):
        outcomes = [make_outcome(c2=False, supported=False)]
        assert probability_of_estimation_failure(outcomes) is None


class TestMcp:
    def test_successful_estimate_saves_headroom(self):
        """Eq. (7) case 1: M_max - est."""
        outcome = make_outcome(est_peak=4 * GiB, oom2=False)
        assert outcome.m_save == RTX_3060.job_budget() - 4 * GiB

    def test_correct_oom_prediction_saves_whole_budget(self):
        """Eq. (7) case 2: the job never wastes the GPU."""
        outcome = make_outcome(
            oom_pred=True, oom1=True, c1=True, ran_round2=False, oom2=None
        )
        assert outcome.m_save == RTX_3060.job_budget()

    def test_failed_estimate_costs_whole_budget(self):
        """Eq. (7) case 3: -M_max penalty."""
        outcome = make_outcome(c1=False, ran_round2=False, oom2=None, c2=False)
        assert outcome.m_save == -RTX_3060.job_budget()

    def test_round2_oom_penalized(self):
        outcome = make_outcome(oom2=True, c2=False)
        assert outcome.m_save == -RTX_3060.job_budget()

    def test_mcp_averages(self):
        outcomes = [
            make_outcome(est_peak=4 * GiB, oom2=False),
            make_outcome(c1=False, ran_round2=False, oom2=None, c2=False),
        ]
        expected = (
            (RTX_3060.job_budget() - 4 * GiB) - RTX_3060.job_budget()
        ) / 2
        assert memory_conservation_potential(outcomes) == pytest.approx(expected)


class TestMre:
    def test_median_over_errors(self):
        outcomes = [
            make_outcome(est_peak=100, m_peak2=100, oom2=False),
            make_outcome(est_peak=150, m_peak2=100, oom2=False),
            make_outcome(est_peak=120, m_peak2=100, oom2=False),
        ]
        assert median_relative_error(outcomes) == pytest.approx(0.2)

    def test_none_when_empty(self):
        assert median_relative_error([]) is None

    def test_scores_aggregate(self):
        outcomes = [make_outcome(est_peak=110, m_peak2=100, oom2=False)]
        scores = score_outcomes(outcomes)
        assert scores["test"].num_runs == 1
        assert scores["test"].mre == pytest.approx(0.1)


class TestValidationProtocol:
    class PerfectEstimator:
        """Cheats: reads the ground truth and adds 2% headroom."""

        name = "oracle"

        def __init__(self, cache: GroundTruthCache):
            self.cache = cache

        def supports(self, workload):
            return True

        def estimate(self, workload, device):
            from repro.core.result import EstimationResult
            from repro.eval.validation import _seed_for

            truth = self.cache.round1(
                workload, device, _seed_for(workload, device, 0)
            )
            peak = (
                device.capacity_bytes * 2
                if truth.oom
                else int(truth.measured_peak * 1.02)
            )
            return EstimationResult(
                estimator=self.name,
                workload=workload,
                device=device,
                peak_bytes=peak,
                runtime_seconds=0.0,
            )

        def unsupported_result(self, workload, device):  # pragma: no cover
            raise AssertionError

    def test_oracle_passes_both_rounds(self, tiny_model_spec):
        cache = GroundTruthCache()
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 32)
        outcome = validate(
            self.PerfectEstimator(cache), workload, RTX_3060, cache=cache
        )
        assert outcome.c1 and outcome.c2
        assert outcome.ran_round2
        assert outcome.error is not None and outcome.error < 0.05
        assert outcome.m_save is not None and outcome.m_save > 0

    def test_gross_underestimate_fails_round2(self):
        class Lowballer:
            name = "lowball"

            def supports(self, workload):
                return True

            def estimate(self, workload, device):
                from repro.core.result import EstimationResult

                return EstimationResult(
                    estimator=self.name,
                    workload=workload,
                    device=device,
                    peak_bytes=32 * MiB,
                    runtime_seconds=0.0,
                )

        workload = WorkloadConfig("MobileNetV3Small", "adam", 64)
        outcome = validate(Lowballer(), workload, RTX_3060)
        assert outcome.c1  # round 1 agrees: no OOM predicted, none happened
        assert outcome.ran_round2
        assert outcome.oom2  # but the estimate is unusable as a cap
        assert not outcome.c2
        assert outcome.m_save == -RTX_3060.job_budget()

    def test_cache_shares_round1(self):
        cache = GroundTruthCache()
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 16)
        cache.round1(workload, RTX_3060, seed=5)
        cache.round1(workload, RTX_3060, seed=5)
        assert cache.misses == 1


class TestWorkloadGrids:
    def test_cnn_batches(self):
        assert CNN_BATCH_SIZES == (200, 300, 400, 500, 600, 700)

    def test_small_batch_models(self):
        assert batch_sizes_for("Qwen3-0.6B", "transformer") == SMALL_BATCH_SIZES
        assert batch_sizes_for("pythia-1b", "transformer") == SMALL_BATCH_SIZES
        assert batch_sizes_for("gpt2", "transformer")[0] == 5

    def test_full_anova_grid_size(self):
        grid = anova_grid()
        # 12 CNNs x 5 opts x 6 batches + 8 transformers x 4 x 11 + 2 x 4 x 8
        assert len(grid) == 12 * 5 * 6 + 8 * 4 * 11 + 2 * 4 * 8

    def test_thinned_grid(self):
        grid = anova_grid(max_batches_per_model=2, max_optimizers=1)
        models = {w.model for w in grid}
        assert len(models) == 22
        per_model = max(
            sum(1 for w in grid if w.model == m) for m in models
        )
        assert per_model <= 2

    def test_monte_carlo_randomizes_placement(self):
        samples = list(monte_carlo_samples(60, seed=1))
        positions = {w.zero_grad_position for w, _ in samples}
        devices = {d.name for _, d in samples}
        assert positions == {"pos0", "pos1"}
        assert len(devices) == 2

    def test_monte_carlo_deterministic_per_seed(self):
        first = list(monte_carlo_samples(10, seed=7))
        second = list(monte_carlo_samples(10, seed=7))
        assert first == second

    def test_rq5_grid(self):
        grid = rq5_grid()
        assert len(grid) == 6  # 3 models x {sgd, adafactor}
        assert all(w.batch_size == 1 for w in grid)


class TestReporting:
    def test_box_stats(self):
        stats = BoxStats.from_errors([1.0, 2.0, 3.0, 4.0])
        assert stats.median == 2.5
        assert stats.q1 == 1.75
        assert stats.q3 == 3.25
        assert stats.maximum == 4.0

    def test_box_stats_empty(self):
        assert BoxStats.from_errors([]) is None

    def test_quadrant_classification(self):
        from repro.eval.runner import ExperimentResult

        result = ExperimentResult(
            outcomes=[
                make_outcome(est_peak=101 * MiB, m_peak2=100 * MiB, oom2=False)
            ]
        )
        summary = quadrant_summary(result)
        assert summary["test"]["optimal"] == 1

    def test_outcome_rows_use_canonical_dicts(self):
        import json

        from repro.eval.reporting import outcome_rows
        from repro.eval.runner import ExperimentResult

        outcome = make_outcome()
        (row,) = outcome_rows(ExperimentResult(outcomes=[outcome]))
        assert row["model"] == "gpt2"
        assert row["batch_size"] == 8
        assert row["device"] == RTX_3060.as_dict()
        assert row["est_peak"] == outcome.est_peak
        json.dumps(row)  # JSON-ready end to end


class TestDeviceSpec:
    def test_job_budget(self):
        device = DeviceSpec(
            name="d", capacity_bytes=8 * GiB, init_bytes=GiB,
            framework_bytes=GiB,
        )
        assert device.job_budget() == 6 * GiB

    def test_no_budget_rejected(self):
        device = DeviceSpec(
            name="d", capacity_bytes=GiB, framework_bytes=2 * GiB
        )
        with pytest.raises(ValueError):
            device.job_budget()

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig("gpt2", "adam", 0)
        with pytest.raises(ValueError):
            WorkloadConfig("gpt2", "adam", 1, zero_grad_position="pos9")
