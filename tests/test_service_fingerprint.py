"""Canonical keys and request fingerprints."""

import dataclasses

import pytest

from repro.allocator.constants import DEFAULT_CONFIG
from repro.service.fingerprint import (
    DIGEST_LENGTH,
    fingerprint_request,
    request_payload,
)
from repro.units import GiB
from repro.workload import RTX_3060, RTX_4060, DeviceSpec, WorkloadConfig

WORKLOAD = WorkloadConfig("gpt2", "adam", 8)


class TestCanonicalForms:
    def test_workload_round_trip(self):
        workload = WorkloadConfig(
            "gpt2", "sgd", 16, zero_grad_position="pos0", set_to_none=False
        )
        assert WorkloadConfig.from_dict(workload.as_dict()) == workload

    def test_workload_from_dict_defaults(self):
        rebuilt = WorkloadConfig.from_dict(
            {"model": "gpt2", "optimizer": "adam", "batch_size": 8}
        )
        assert rebuilt == WORKLOAD

    def test_device_round_trip(self):
        device = DeviceSpec(
            name="custom", capacity_bytes=24 * GiB, init_bytes=GiB
        )
        assert DeviceSpec.from_dict(device.as_dict()) == device

    def test_to_key_matches_equality(self):
        assert WORKLOAD.to_key() == WorkloadConfig("gpt2", "adam", 8).to_key()
        assert WORKLOAD.to_key() != WORKLOAD.with_batch_size(9).to_key()
        assert RTX_3060.to_key() != RTX_4060.to_key()
        assert RTX_3060.to_key() == RTX_3060.with_init(0).to_key()

    def test_as_dict_covers_every_field(self):
        assert set(WORKLOAD.as_dict()) == {
            f.name for f in dataclasses.fields(WorkloadConfig)
        }
        assert set(RTX_3060.as_dict()) == {
            f.name for f in dataclasses.fields(DeviceSpec)
        }


class TestFingerprint:
    def fp(self, workload=WORKLOAD, device=RTX_3060, **overrides):
        kwargs = {
            "estimator_name": "xMem",
            "estimator_version": "1",
            "allocator_config": DEFAULT_CONFIG,
        }
        kwargs.update(overrides)
        return fingerprint_request(workload, device, **kwargs)

    def test_stable_across_calls_and_instances(self):
        again = WorkloadConfig("gpt2", "adam", 8)
        assert self.fp() == self.fp(workload=again)

    def test_known_value_pinned(self):
        """The digest is part of the persistence contract — a change here
        means FINGERPRINT_VERSION must be bumped."""
        assert self.fp() == fingerprint_request(
            WORKLOAD,
            RTX_3060,
            estimator_name="xMem",
            estimator_version="1",
            allocator_config=DEFAULT_CONFIG,
        )
        assert len(self.fp()) == DIGEST_LENGTH
        assert int(self.fp(), 16) >= 0  # hex

    @pytest.mark.parametrize(
        "variant",
        [
            {"workload": WORKLOAD.with_batch_size(16)},
            {"workload": dataclasses.replace(WORKLOAD, optimizer="sgd")},
            {
                "workload": dataclasses.replace(
                    WORKLOAD, zero_grad_position="pos0"
                )
            },
            {"device": RTX_4060},
            {"device": RTX_3060.with_init(GiB)},
            {"estimator_name": "DNNMem"},
            {"estimator_version": "2"},
            {
                "allocator_config": dataclasses.replace(
                    DEFAULT_CONFIG, allow_split=False
                )
            },
            {"allocator_config": None},
        ],
    )
    def test_any_input_change_changes_fingerprint(self, variant):
        assert self.fp(**variant) != self.fp()

    def test_payload_versioned_and_complete(self):
        payload = request_payload(
            WORKLOAD,
            RTX_3060,
            estimator_name="xMem",
            allocator_config=DEFAULT_CONFIG,
        )
        assert payload["v"] == 1
        assert payload["workload"] == WORKLOAD.as_dict()
        assert payload["device"] == RTX_3060.as_dict()
        assert payload["allocator"]["min_block_size"] == 512
