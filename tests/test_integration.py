"""End-to-end integration: full pipelines across module boundaries."""


from repro.core import Analyzer, MemoryOrchestrator, MemorySimulator, XMemEstimator
from repro.eval.runner import ExperimentRunner
from repro.eval.validation import GroundTruthCache, validate
from repro.runtime import TrainLoopConfig, profile_on_cpu, run_gpu_ground_truth
from repro.trace import Trace, import_kineto, trace_to_json
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig


class TestProfileAnalyzeSimulate:
    """The Fig. 4 pipeline driven manually, stage by stage."""

    def test_stage_by_stage_equals_facade(self):
        workload = WorkloadConfig("MobileNetV3Small", "adam", 32)
        trace = profile_on_cpu(
            workload.model, workload.batch_size, workload.optimizer
        )
        analyzed = Analyzer().analyze(trace)
        sequence = MemoryOrchestrator().orchestrate(analyzed)
        simulation = MemorySimulator().replay(sequence)
        facade = XMemEstimator().estimate(workload, RTX_3060)
        assert simulation.peak_reserved_bytes == facade.peak_bytes

    def test_trace_survives_json_round_trip(self, tmp_path):
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 16)
        trace = profile_on_cpu(
            workload.model, workload.batch_size, workload.optimizer
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        reloaded = Trace.load(path)
        direct = XMemEstimator().estimate(workload, RTX_3060, trace=trace)
        from_disk = XMemEstimator().estimate(
            workload, RTX_3060, trace=reloaded
        )
        assert direct.peak_bytes == from_disk.peak_bytes

    def test_own_trace_reimports_via_kineto_adapter(self):
        """Our schema is a Kineto dialect: the adapter must accept it."""
        trace = profile_on_cpu("MobileNetV3Small", 8, "sgd")
        document = trace_to_json(trace.spans, trace.memory_events, {})
        imported, report = import_kineto(document)
        assert report.num_memory_events == len(trace.memory_events)
        assert imported.num_iterations() == trace.num_iterations()
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 8)
        native = XMemEstimator().estimate(workload, RTX_3060, trace=trace)
        adapted = XMemEstimator().estimate(workload, RTX_3060, trace=imported)
        assert native.peak_bytes == adapted.peak_bytes


class TestCrossDeviceConsistency:
    def test_estimate_independent_of_device(self):
        """The peak is a property of the job; the device only sets the
        budget the estimate is compared against."""
        workload = WorkloadConfig("distilgpt2", "adam", 4)
        on_3060 = XMemEstimator().estimate(workload, RTX_3060)
        on_4060 = XMemEstimator().estimate(workload, RTX_4060)
        assert on_3060.peak_bytes == on_4060.peak_bytes

    def test_oom_prediction_depends_on_device(self):
        workload = WorkloadConfig("pythia-1b", "adam", 4)
        result_3060 = XMemEstimator().estimate(workload, RTX_3060)
        # pythia-1b + Adam needs ~16 GB of states alone: OOM on both, but
        # the comparison must use each device's own budget
        assert result_3060.predicts_oom()
        from repro.workload import A100_40GB

        result_a100 = XMemEstimator().estimate(workload, A100_40GB)
        assert not result_a100.predicts_oom()


class TestOomBoundary:
    def test_batch_sweep_crosses_oom(self):
        """Sweeping batch size crosses the fits/OOM boundary, and the
        estimator tracks the ground truth across it."""
        crossings = []
        for batch in (10, 60, 110):
            workload = WorkloadConfig("gpt2", "adam", batch)
            estimate = XMemEstimator().estimate(workload, RTX_4060)
            truth = run_gpu_ground_truth(
                "gpt2", batch, "adam",
                capacity_bytes=RTX_4060.job_budget(), seed=5,
            )
            crossings.append((estimate.predicts_oom(), truth.oom))
        # monotone: once OOM, stays OOM
        predictions = [p for p, _ in crossings]
        truths = [t for _, t in crossings]
        assert predictions == sorted(predictions)
        assert truths == sorted(truths)
        assert truths[-1]  # the largest batch really OOMs
        assert predictions == truths  # xMem tracks the boundary


class TestRunnerIntegration:
    def test_runner_caches_estimates_and_truths(self):
        class CountingEstimator(XMemEstimator):
            calls = 0

            def estimate(self, workload, device, trace=None):
                type(self).calls += 1
                return super().estimate(workload, device, trace)

        estimator = CountingEstimator()
        runner = ExperimentRunner(estimators=[estimator], repeats=2)
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 16)
        result = runner.run([(workload, RTX_3060)])
        assert len(result.outcomes) == 2
        assert CountingEstimator.calls == 1  # estimate computed once
        assert runner.cache.misses == 2  # one round-1 truth per repeat seed

    def test_scores_and_by_model_views(self):
        runner = ExperimentRunner(
            estimators=[XMemEstimator()], repeats=1
        )
        workloads = [
            WorkloadConfig("MobileNetV3Small", "sgd", 16),
            WorkloadConfig("MobileNetV3Small", "adam", 16),
        ]
        result = runner.run([(w, RTX_3060) for w in workloads])
        scores = result.scores()
        assert scores["xMem"].num_runs == 2
        assert ("MobileNetV3Small", "xMem") in result.by_model()

    def test_validation_repeat_seeds_differ(self):
        cache = GroundTruthCache()
        workload = WorkloadConfig("MobileNetV3Small", "sgd", 64)
        estimator = XMemEstimator()
        first = validate(estimator, workload, RTX_3060, run_index=0, cache=cache)
        second = validate(estimator, workload, RTX_3060, run_index=1, cache=cache)
        assert first.est_peak == second.est_peak  # estimate deterministic
        # ground-truth jitter differs across repeats (usually): at minimum
        # the protocol must have run both
        assert first.m_peak1 is not None and second.m_peak1 is not None


class TestFigure1EndToEnd:
    def test_xmem_tracks_zero_grad_placement(self):
        """xMem must *predict* the Fig. 1 effect, not just observe it."""
        peaks = {}
        truths = {}
        for position in ("pos0", "pos1"):
            workload = WorkloadConfig(
                "distilgpt2", "adam", 8, zero_grad_position=position
            )
            peaks[position] = XMemEstimator().estimate(
                workload, RTX_3060
            ).peak_bytes
            truths[position] = run_gpu_ground_truth(
                "distilgpt2", 8, "adam",
                loop=TrainLoopConfig(
                    iterations=2, zero_grad_position=position
                ),
                capacity_bytes=RTX_3060.job_budget(),
                seed=8,
            ).measured_peak
        assert peaks["pos0"] > peaks["pos1"]
        assert truths["pos0"] > truths["pos1"]
        for position in ("pos0", "pos1"):
            error = abs(peaks[position] - truths[position]) / truths[position]
            assert error < 0.08
