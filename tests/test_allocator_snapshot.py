"""Snapshot export (the torch.cuda.memory_snapshot analogue)."""

from repro.allocator.caching import CachingAllocator
from repro.allocator.device import DeviceAllocator
from repro.allocator.snapshot import memory_snapshot, summarize_snapshot
from repro.units import GiB, MiB


def make_allocator():
    return CachingAllocator(DeviceAllocator(capacity=1 * GiB))


class TestSnapshot:
    def test_empty_allocator(self):
        assert memory_snapshot(make_allocator()) == []

    def test_segments_and_blocks(self):
        alloc = make_allocator()
        alloc.malloc(512)
        alloc.malloc(5 * MiB)
        snapshot = memory_snapshot(alloc)
        assert len(snapshot) == 2
        kinds = {s["segment_type"] for s in snapshot}
        assert kinds == {"small", "large"}

    def test_block_states(self):
        alloc = make_allocator()
        keep = alloc.malloc(512)
        drop = alloc.malloc(512)
        alloc.free(drop)
        (segment,) = memory_snapshot(alloc)
        states = [b["state"] for b in segment["blocks"]]
        assert states.count("active_allocated") == 1
        assert "inactive" in states
        alloc.free(keep)

    def test_requested_size_recorded(self):
        alloc = make_allocator()
        alloc.malloc(1000)
        (segment,) = memory_snapshot(alloc)
        allocated = [
            b for b in segment["blocks"] if b["state"] == "active_allocated"
        ]
        assert allocated[0]["requested_size"] == 1000
        assert allocated[0]["size"] == 1024

    def test_snapshot_matches_counters(self):
        alloc = make_allocator()
        blocks = [alloc.malloc(s) for s in (512, 3 * MiB, 12 * MiB)]
        alloc.free(blocks[1])
        summary = summarize_snapshot(memory_snapshot(alloc))
        assert summary["reserved_bytes"] == alloc.reserved_bytes
        assert summary["allocated_bytes"] == alloc.allocated_bytes
        assert summary["cached_bytes"] == alloc.cached_bytes()

    def test_addresses_are_segment_ordered(self):
        alloc = make_allocator()
        alloc.malloc(5 * MiB)
        alloc.malloc(25 * MiB)
        snapshot = memory_snapshot(alloc)
        addrs = [s["address"] for s in snapshot]
        assert addrs == sorted(addrs)
