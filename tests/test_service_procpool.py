"""The process-pool execution driver (tentpole of the procpool PR).

The contract under test: :class:`ProcEstimationService` /
:class:`ProcServiceGateway` run the *same* sans-IO policy core as the
thread and asyncio drivers — byte-identical results, identical
rejection/shed accounting, single-flight dedup — while the estimator
itself executes in worker processes built once per process from a
picklable factory.
"""

from __future__ import annotations

import threading
import time
from functools import partial

import pytest

from repro.core.estimator import XMemEstimator
from repro.errors import (
    RequestRejectedError,
    ServiceClosedError,
)
from repro.service import (
    EstimationService,
    ProcEstimationService,
    ProcServiceGateway,
    RequestContext,
    ServiceGateway,
    ServiceRequest,
    SyntheticEstimator,
)
from repro.service.procpool import default_estimator_factory, make_pool
from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV3Small", "adam", 4)

#: module-level partials: picklable under any start method
fast_synthetic = partial(SyntheticEstimator, work_seconds=0.0)
slow_synthetic = partial(SyntheticEstimator, work_seconds=0.05)
tiny_xmem = partial(XMemEstimator, iterations=1, curve=False)


# ----------------------------------------------------------------------
# envelope round trip (the invariant the driver depends on)
# ----------------------------------------------------------------------


class TestEnvelopeRoundTrip:
    def test_service_request_as_dict_round_trips(self):
        request = ServiceRequest(
            workload=WORKLOAD,
            device=RTX_3060,
            fingerprint="fp-1",
            metadata={"tenant": "a"},
        )
        clone = ServiceRequest.from_dict(request.as_dict())
        assert clone == request

    def test_service_request_trace_is_out_of_band(self):
        from repro.runtime.profiler import profile_on_cpu

        trace = profile_on_cpu(
            WORKLOAD.model,
            batch_size=WORKLOAD.batch_size,
            optimizer=WORKLOAD.optimizer,
            iterations=1,
        )
        request = ServiceRequest(
            workload=WORKLOAD, device=RTX_3060, fingerprint="fp", trace=trace
        )
        payload = request.as_dict()
        assert "trace" not in payload  # identity only — trace rides apart
        clone = ServiceRequest.from_dict(payload, trace=trace)
        assert clone.trace is trace
        assert clone.workload == request.workload

    def test_request_context_round_trips(self):
        ctx = RequestContext(
            request_id=7,
            submitted_at=123.5,
            fingerprint="fp-7",
            deadline=999.0,
            attempt=2,
            shard_hint=3,
            cache_hit=True,
            deduplicated=True,
            short_circuited_by="cache",
            tags={"timing_start": 1.0},
            metadata={"trace_id": "t"},
        )
        clone = RequestContext.from_dict(ctx.as_dict())
        assert clone == ctx


# ----------------------------------------------------------------------
# single service
# ----------------------------------------------------------------------


class TestProcEstimationService:
    def test_results_byte_identical_to_direct_and_thread_driver(self):
        direct = tiny_xmem().estimate(WORKLOAD, RTX_3060)
        with ProcEstimationService(
            estimator_factory=tiny_xmem, max_workers=2
        ) as proc_service:
            via_processes = proc_service.estimate(WORKLOAD, RTX_3060)
        with EstimationService(
            estimator=tiny_xmem(), max_workers=2
        ) as thread_service:
            via_threads = thread_service.estimate(WORKLOAD, RTX_3060)
        assert via_processes.peak_bytes == direct.peak_bytes
        assert via_processes.detail == direct.detail
        assert via_threads.peak_bytes == via_processes.peak_bytes
        assert via_processes.predicts_oom() == direct.predicts_oom()

    def test_cache_hit_and_stage_timings_cross_the_boundary(self):
        with ProcEstimationService(
            estimator_factory=tiny_xmem, max_workers=1
        ) as service:
            first = service.estimate(WORKLOAD, RTX_3060)
            second = service.estimate(WORKLOAD, RTX_3060)
            stats = service.stats()
        assert second is first  # the cached object itself
        assert stats["service"]["computed"] == 1
        assert stats["service"]["cache_hits"] == 1
        # the worker's staged breakdown was merged into parent metrics
        assert "simulate" in stats["service"]["stages"]
        assert stats["service"]["stages"]["simulate"]["count"] == 1
        # and the computing worker was attributed
        assert sum(stats["service"]["workers"].values()) == 1

    def test_single_flight_dedup_across_threads(self):
        with ProcEstimationService(
            estimator_factory=slow_synthetic, max_workers=1
        ) as service:
            futures = []

            def hammer():
                futures.append(service.submit(WORKLOAD, RTX_3060))

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            results = {id(f.result()) for f in futures}
            stats = service.stats()
        assert len(results) == 1  # every caller saw the same object
        assert stats["service"]["computed"] == 1
        assert stats["service"]["deduplicated"] >= 1

    def test_validation_rejects_synchronously_in_parent(self):
        with ProcEstimationService(
            estimator_factory=tiny_xmem, max_workers=1
        ) as service:
            with pytest.raises(RequestRejectedError):
                service.submit(
                    WorkloadConfig("no-such-model", "adam", 4), RTX_3060
                )
            stats = service.stats()
        assert stats["service"]["rejected"] == 1
        assert stats["service"]["computed"] == 0  # never hit the pool

    def test_estimate_many_shares_profiles_across_devices(self):
        requests = [(WORKLOAD, RTX_3060), (WORKLOAD, RTX_4060)]
        with ProcEstimationService(
            estimator_factory=tiny_xmem, max_workers=2
        ) as service:
            results = service.estimate_many(requests)
        direct = [tiny_xmem().estimate(w, d) for w, d in requests]
        assert [r.peak_bytes for r in results] == [
            r.peak_bytes for r in direct
        ]

    def test_drain_joins_inflight_without_losing_results(self):
        with ProcEstimationService(
            estimator_factory=slow_synthetic, max_workers=2
        ) as service:
            futures = [
                service.submit(
                    WorkloadConfig("MobileNetV3Small", "adam", 1 + i),
                    RTX_3060,
                )
                for i in range(4)
            ]
            assert service.drain(timeout=30)
            assert all(f.done() for f in futures)
            assert all(f.exception() is None for f in futures)
            with pytest.raises(ServiceClosedError):
                service.submit(WORKLOAD, RTX_3060)
        # close after drain is idempotent
        service.close()

    def test_drain_racing_submit_unwinds_chain_and_reconciles_metrics(self):
        # a drain() can land between submit()'s intake gate and the
        # dispatch; the locked re-check must refuse the request *and*
        # unwind the already-entered middleware layers with a classified
        # outcome.  Deterministic reproduction: a middleware that flips
        # the draining flag while the chain is running — exactly the
        # interleaving a concurrent drain produces.
        from repro.service import ServiceMiddleware

        class DrainDuringHooks(ServiceMiddleware):
            name = "drain-during-hooks"

            def __init__(self):
                self.errors_seen = []

            def attach(self, service):
                self.service = service

            def on_request(self, request, ctx):
                self.service._draining = True  # the racing drain()
                return None

            def on_error(self, request, error, ctx):
                self.errors_seen.append(type(error).__name__)

        racer = DrainDuringHooks()
        service = ProcEstimationService(
            estimator_factory=fast_synthetic,
            max_workers=1,
            middlewares=(racer,),
        )
        racer.attach(service)
        try:
            with pytest.raises(ServiceClosedError):
                service.submit(WORKLOAD, RTX_3060)
            stats = service.stats()["service"]
            # the entered layer was unwound...
            assert racer.errors_seen == ["ServiceClosedError"]
            # ...and the counters still reconcile: every request is
            # classified exactly once
            assert stats["requests"] == 1
            assert stats["rejected"] == 1
            assert stats["computed"] == stats["errors"] == 0
            assert len(service.core.inflight) == 0
        finally:
            service.close(wait=False)

    def test_dispatch_failure_releases_single_flight(self):
        service = ProcEstimationService(
            estimator_factory=fast_synthetic, max_workers=1
        )
        try:
            # break the substrate out from under the service: dispatch
            # must fail through the future, not hang a single-flight slot
            service._executor.shutdown(wait=True)
            future = service.submit(WORKLOAD, RTX_3060)
            with pytest.raises(RuntimeError):
                future.result(timeout=10)
            assert len(service.core.inflight) == 0
            assert service.stats()["service"]["errors"] == 1
        finally:
            service.close(wait=False)

    @pytest.mark.slow
    def test_spawn_context_with_picklable_factory(self):
        # the spawn start method re-imports everything in the child and
        # pickles the factory: proves the envelope + factory really are
        # substrate-portable, not fork-dependent
        with ProcEstimationService(
            estimator_factory=fast_synthetic,
            max_workers=1,
            mp_context="spawn",
        ) as service:
            result = service.estimate(WORKLOAD, RTX_3060)
        assert result.peak_bytes == fast_synthetic().estimate(
            WORKLOAD, RTX_3060
        ).peak_bytes


# ----------------------------------------------------------------------
# gateway
# ----------------------------------------------------------------------


class TestProcServiceGateway:
    def test_routing_and_fleet_aggregation(self):
        with ProcServiceGateway(
            num_shards=2, estimator_factory=fast_synthetic, pool_workers=2
        ) as gateway:
            workloads = [
                WorkloadConfig("MobileNetV3Small", "adam", 1 + i)
                for i in range(6)
            ]
            for workload in workloads:
                gateway.estimate(workload, RTX_3060)
            stats = gateway.stats()
        aggregate = stats["aggregate"]
        assert aggregate["computed"] == 6
        assert stats["gateway"]["requests"] == 6
        assert stats["gateway"]["pool_workers"] == 2
        # every computed estimate is attributed to a real worker PID
        assert sum(aggregate["workers"].values()) == 6

    def test_matches_thread_gateway_decisions(self):
        workloads = [
            WorkloadConfig("MobileNetV3Small", "sgd", 1 + i) for i in range(5)
        ]
        with ProcServiceGateway(
            num_shards=3, estimator_factory=fast_synthetic, pool_workers=2
        ) as proc_gateway, ServiceGateway(
            num_shards=3, estimator_factory=fast_synthetic
        ) as thread_gateway:
            for workload in workloads:
                # same fingerprint, same default hash ring -> same shard
                assert proc_gateway.shard_for(
                    workload, RTX_3060
                ) == thread_gateway.shard_for(workload, RTX_3060)
                assert proc_gateway.estimate(
                    workload, RTX_3060
                ).peak_bytes == thread_gateway.estimate(
                    workload, RTX_3060
                ).peak_bytes

    def test_shed_when_queue_full(self):
        from repro.errors import RateLimitExceededError

        with ProcServiceGateway(
            num_shards=1,
            estimator_factory=slow_synthetic,
            pool_workers=1,
            max_queue_depth=2,
        ) as gateway:
            futures, shed = [], 0
            for index in range(6):
                try:
                    futures.append(
                        gateway.submit(
                            WorkloadConfig(
                                "MobileNetV3Small", "adam", 1 + index
                            ),
                            RTX_3060,
                        )
                    )
                except RateLimitExceededError:
                    shed += 1
            for future in futures:
                future.result(timeout=30)
            stats = gateway.stats()
        assert shed > 0
        assert stats["gateway"]["shed"] == shed
        assert stats["aggregate"]["computed"] == len(futures)

    def test_drain_then_close_is_clean(self):
        with ProcServiceGateway(
            num_shards=2, estimator_factory=slow_synthetic, pool_workers=2
        ) as gateway:
            futures = [
                gateway.submit(
                    WorkloadConfig("MobileNetV3Small", "adam", 1 + i),
                    RTX_3060,
                )
                for i in range(4)
            ]
            assert gateway.drain(timeout=30)
            assert gateway.pending() == 0
            assert all(f.exception() is None for f in futures)
            with pytest.raises(ServiceClosedError):
                gateway.submit(WORKLOAD, RTX_3060)
        gateway.close()  # idempotent


# ----------------------------------------------------------------------
# pool plumbing
# ----------------------------------------------------------------------


class TestWorkerDeathRecovery:
    """A planned ``worker_kill`` takes a worker process down mid-request;
    the supervisor rebuilds the pool and the request is re-dispatched —
    exactly once answered, with ledger provenance."""

    def test_killed_worker_is_rebuilt_and_request_redispatched(self):
        from repro.service import FaultPlan, FaultSpec, Telemetry

        plan = FaultPlan.from_specs(
            [FaultSpec(kind="worker_kill", index=0)]
        )
        telemetry = Telemetry()
        workloads = [
            WorkloadConfig("MobileNetV3Small", "adam", 1 + i)
            for i in range(4)
        ]
        with ProcServiceGateway(
            num_shards=2,
            estimator_factory=fast_synthetic,
            pool_workers=2,
            fault_plan=plan,
            telemetry=telemetry,
        ) as gateway:
            results = [gateway.estimate(w, RTX_3060) for w in workloads]
            stats = gateway.stats()
        direct = [fast_synthetic().estimate(w, RTX_3060) for w in workloads]
        assert results == direct  # the kill never changed an answer
        assert stats["gateway"]["pool_rebuilds"] >= 1
        assert stats["gateway"]["faults"]["injected"] == {"worker_kill": 1}
        redispatches = [
            event
            for event in telemetry.ledger.events(event="retry")
            if event.cause == "worker_death"
        ]
        assert len(redispatches) == 1


class TestPool:
    def test_make_pool_validates_workers(self):
        with pytest.raises(ValueError):
            make_pool(0, default_estimator_factory)

    def test_workers_reuse_one_estimator_per_process(self):
        # same fingerprint twice, forced past the cache: the per-worker
        # estimator is built once (initializer), so both calls land on a
        # warmed instance — observable through the pipeline's stage cache
        with ProcEstimationService(
            estimator_factory=tiny_xmem,
            max_workers=1,
            middlewares=(),  # no cache middleware: every call computes
        ) as service:
            first = service.estimate(WORKLOAD, RTX_3060)
            # distinct fingerprint metadata not needed: without a cache
            # middleware the second identical request recomputes
            time.sleep(0.01)
            second = service.estimate(WORKLOAD, RTX_3060)
            stats = service.stats()
        assert stats["service"]["computed"] == 2
        assert first.peak_bytes == second.peak_bytes
        # the second run hit the worker's warmed stage caches
        assert second.stage_cached.get("profile", False)


class TestProcpoolTelemetryIdentity:
    """The process driver keeps the telemetry invariants of the others.

    Worker-side stage spans cross the pickle boundary as plain dicts and
    re-attach under the parent request span, so the canonical trees and
    the ledger decision sequence match the thread driver exactly for a
    deterministic trace (unique fingerprints within each wave — see
    ``test_service_telemetry.py`` for why intra-wave duplicates are
    excluded).
    """

    @staticmethod
    def _trace():
        from repro.service.traffic import TrafficRequest, TrafficTrace

        workloads = [
            WorkloadConfig("MobileNetV3Small", "sgd", size)
            for size in (1, 2, 4, 8)
        ]
        requests = [
            TrafficRequest(workload=workload, device=RTX_3060, wave=wave)
            for wave in range(3)
            for workload in workloads
        ]
        return TrafficTrace(
            scenario="handbuilt", seed=0, requests=tuple(requests)
        )

    def test_span_trees_and_decisions_match_thread_driver(self):
        from repro.service import (
            Telemetry,
            canonical_trace_trees,
            make_policy,
            replay,
        )

        trace = self._trace()
        proc_telemetry = Telemetry(detail="full")
        with ProcServiceGateway(
            num_shards=2,
            estimator_factory=fast_synthetic,
            policy=make_policy("hash", 2, seed=0),
            pool_workers=2,
            telemetry=proc_telemetry,
        ) as gateway:
            proc_report = replay(trace, gateway)
        thread_telemetry = Telemetry(detail="full")
        with ServiceGateway(
            num_shards=2,
            estimator_factory=fast_synthetic,
            policy=make_policy("hash", 2, seed=0),
            telemetry=thread_telemetry,
        ) as gateway:
            thread_report = replay(trace, gateway)
        assert proc_report.answered == thread_report.answered == len(trace)
        assert canonical_trace_trees(
            proc_telemetry.spans()
        ) == canonical_trace_trees(thread_telemetry.spans())
        assert (
            proc_telemetry.ledger.decision_sequence()
            == thread_telemetry.ledger.decision_sequence()
        )
        # computed decisions carry worker provenance only on this driver
        computed = proc_telemetry.ledger.events(event="computed")
        assert computed and all(e.worker for e in computed)
