"""Artifact store (L2) + delta-simulation correctness and failure modes.

The persistent store must behave like a cache, never like a dependency:
corrupt blobs, truncated files, schema drift, and concurrent writers all
degrade to misses and rebuilds — the pipeline's answers stay
byte-identical with or without it.  The delta/closed-form simulate paths
must be invisible in the numbers, exactly like the PR 3 stage caches.
"""

import os
import sqlite3
import subprocess
import sys
import threading

import pytest

from repro.allocator.constants import DEFAULT_CONFIG
from repro.core.artifacts import (
    _MISS,
    ArtifactStore,
    SCHEMA_VERSION,
    artifact_key,
    open_artifact_store,
)
from repro.core.estimator import XMemEstimator
from repro.core.orchestrator import (
    EventKind,
    MemoryOp,
    OrchestratedSequence,
    sequence_fingerprint,
)
from repro.core.pipeline import (
    SIMULATE,
    SOURCE_COMPUTE,
    SOURCE_MEMORY,
    SOURCE_STORE,
    EstimationPipeline,
    PipelineCache,
)
from repro.core.simulator import MemorySimulator
from repro.workload import RTX_3060, WorkloadConfig

WORKLOAD = WorkloadConfig("MobileNetV3Small", "sgd", 4)

MiB = 1024 * 1024


def synthetic_sequence() -> OrchestratedSequence:
    """A small hand-built sequence with a clear peak and full teardown."""
    events = []
    ts = 0
    for block_id in range(8):
        events.append(MemoryOp(ts, EventKind.ALLOC, block_id, 1 * MiB))
        ts += 1
    for block_id in range(4):
        events.append(MemoryOp(ts, EventKind.FREE, block_id, 1 * MiB))
        ts += 1
    for block_id in range(8, 12):
        events.append(MemoryOp(ts, EventKind.ALLOC, block_id, 2 * MiB))
        ts += 1
    for block_id in range(4, 12):
        size = 1 * MiB if block_id < 8 else 2 * MiB
        events.append(MemoryOp(ts, EventKind.FREE, block_id, size))
        ts += 1
    return OrchestratedSequence(
        events=events, horizon=ts, num_blocks=12, persistent_bytes=0
    )


# ----------------------------------------------------------------------
# blob store basics
# ----------------------------------------------------------------------


class TestArtifactStoreBasics:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store.sqlite"))
        assert store.get("profile", ("k",)) is _MISS
        assert store.put("profile", ("k",), {"v": 1})
        assert store.get("profile", ("k",)) == {"v": 1}
        assert store.hits == 1 and store.misses == 1 and store.puts == 1
        persistent = store.counters()
        assert persistent["put:profile"] == 1
        assert persistent["hit:profile"] == 1

    def test_none_is_a_valid_value(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store.sqlite"))
        store.put("analyze", "k", None)
        assert store.get("analyze", "k") is None

    def test_get_or_compute_builds_once_across_instances(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        first = ArtifactStore(path)
        calls = []
        value, stored = first.get_or_compute(
            "profile", "k", lambda: calls.append(1) or "artifact"
        )
        assert (value, stored) == ("artifact", False)
        second = ArtifactStore(path)  # a "new process"
        value, stored = second.get_or_compute(
            "profile", "k", lambda: calls.append(1) or "rebuilt"
        )
        assert (value, stored) == ("artifact", True)
        assert len(calls) == 1
        assert second.counters()["build:profile"] == 1

    def test_open_artifact_store_shares_per_process(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        assert open_artifact_store(path) is open_artifact_store(path)

    def test_build_failure_releases_claim(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store.sqlite"))

        def boom():
            raise RuntimeError("profiler crashed")

        with pytest.raises(RuntimeError):
            store.get_or_compute("profile", "k", boom)
        # the claim is gone: the next builder proceeds immediately
        value, stored = store.get_or_compute("profile", "k", lambda: "ok")
        assert (value, stored) == ("ok", False)


# ----------------------------------------------------------------------
# failure modes: corruption, schema drift, eviction
# ----------------------------------------------------------------------


class TestArtifactStoreFailureModes:
    def test_truncated_blob_is_a_miss(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ArtifactStore(path)
        store.put("profile", "k", list(range(1000)))
        # truncate the payload behind the store's back (checksum now
        # mismatches, exactly like a torn write)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE artifacts SET payload = substr(payload, 1, 16)"
            )
            conn.commit()
        assert store.get("profile", "k") is _MISS
        assert store.corrupt_dropped == 1
        # the corrupt row was dropped, so a rebuild can land cleanly
        value, stored = store.get_or_compute("profile", "k", lambda: "new")
        assert (value, stored) == ("new", False)
        assert store.get("profile", "k") == "new"

    def test_unpicklable_garbage_blob_is_a_miss(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        store = ArtifactStore(path)
        store.put("analyze", "k", "fine")
        import hashlib

        garbage = b"\x80\x04notpickle"
        with sqlite3.connect(path) as conn:
            # valid checksum over invalid pickle bytes: the unpickle
            # failure path, not the checksum path
            conn.execute(
                "UPDATE artifacts SET payload = ?, checksum = ?",
                (garbage, hashlib.sha256(garbage).hexdigest()),
            )
            conn.commit()
        assert store.get("analyze", "k") is _MISS
        assert store.corrupt_dropped == 1

    def test_corrupt_database_file_is_recreated(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        store = ArtifactStore(path)
        assert store.schema_resets == 1
        store.put("profile", "k", "v")
        assert store.get("profile", "k") == "v"

    def test_schema_version_mismatch_recreates_store(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        old = ArtifactStore(path)
        old.put("profile", "k", "stale")
        old.close()
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
            conn.commit()
        fresh = ArtifactStore(path)
        assert fresh.schema_resets == 1
        assert fresh.get("profile", "k") is _MISS  # old rows dropped
        with sqlite3.connect(path) as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        assert row[0] == str(SCHEMA_VERSION)

    def test_size_cap_evicts_least_recently_used_first(self, tmp_path):
        blob = b"x" * 4096
        # cap fits two blobs (pickle overhead is small vs 4 KiB)
        store = ArtifactStore(
            str(tmp_path / "store.sqlite"), max_bytes=2 * 4200
        )
        store.put("profile", "a", blob)
        store.put("profile", "b", blob)
        assert store.get("profile", "a") == blob  # refresh a's recency
        store.put("profile", "c", blob)  # over budget: b is the LRU row
        assert store.get("profile", "b") is _MISS
        assert store.get("profile", "a") == blob
        assert store.get("profile", "c") == blob
        assert store.evictions == 1

    def test_closed_store_degrades_to_misses(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store.sqlite"))
        store.put("profile", "k", "v")
        store.close()
        assert store.get("profile", "k") is _MISS
        assert store.put("profile", "k2", "v") is False
        value, stored = store.get_or_compute("profile", "k3", lambda: "built")
        assert (value, stored) == ("built", False)


# ----------------------------------------------------------------------
# cross-process behaviour
# ----------------------------------------------------------------------

_WRITER_SCRIPT = """
import sys
from repro.core.artifacts import ArtifactStore

path, tag = sys.argv[1], sys.argv[2]
store = ArtifactStore(path, claim_timeout=10.0)
for index in range(12):
    key = ("shared", index)
    value, _ = store.get_or_compute(
        "profile", key, lambda index=index: f"artifact-{index}"
    )
    assert value == f"artifact-{index}", (tag, key, value)
print("ok", tag)
"""


class TestArtifactStoreConcurrency:
    def test_two_processes_write_the_same_keys(self, tmp_path):
        """Two real processes race get_or_compute over one store file.

        WAL + the claims table must keep the store intact and build each
        key exactly once across both writers (a claim loser inherits the
        winner's artifact instead of rebuilding).
        """
        path = str(tmp_path / "store.sqlite")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, path, f"w{index}"],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for index in range(2)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.startswith("ok")
        store = ArtifactStore(path)
        counters = store.counters()
        assert counters["build:profile"] == 12  # exactly once per key
        for index in range(12):
            assert store.get("profile", ("shared", index)) == (
                f"artifact-{index}"
            )

    def test_concurrent_threads_single_store(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store.sqlite"))
        results = {}
        barrier = threading.Barrier(4)

        def worker(index):
            barrier.wait()
            for key in range(8):
                value, _ = store.get_or_compute(
                    "analyze", key, lambda key=key: f"v{key}"
                )
                results[(index, key)] = value

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(
            results[(index, key)] == f"v{key}"
            for index in range(4)
            for key in range(8)
        )


# ----------------------------------------------------------------------
# stage-store single flight under failure (satellite regression)
# ----------------------------------------------------------------------


class TestStageStoreGateRelease:
    def test_raising_builder_releases_concurrent_waiters(self):
        """A builder that dies must wake its waiters, not strand them.

        Regression for the in-flight gate: the owner's exception path now
        clears the gate in a ``finally``, so waiters re-check, take over
        the build, and everyone returns.
        """
        cache = PipelineCache()
        owner_entered = threading.Event()
        release_owner = threading.Event()
        outcome = {}

        def failing_build():
            owner_entered.set()
            release_owner.wait(timeout=10)
            raise RuntimeError("owner died mid-build")

        def owner():
            try:
                cache.traces.get_or_compute("k", failing_build)
            except RuntimeError as error:
                outcome["owner"] = error

        def waiter():
            outcome["waiter"] = cache.traces.get_or_compute(
                "k", lambda: "recovered"
            )

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert owner_entered.wait(timeout=10)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        # the waiter is parked on the in-flight gate; let the owner raise
        release_owner.set()
        owner_thread.join(timeout=10)
        waiter_thread.join(timeout=10)
        assert not waiter_thread.is_alive(), "waiter stranded on gate"
        assert isinstance(outcome["owner"], RuntimeError)
        assert outcome["waiter"] == ("recovered", False)


# ----------------------------------------------------------------------
# delta simulation + closed-form peaks
# ----------------------------------------------------------------------


class TestDeltaSimulation:
    def test_peak_profile_matches_full_replay(self):
        sequence = synthetic_sequence()
        simulator = MemorySimulator()
        full = simulator.replay(sequence, record_timeline=True)
        peak_only = simulator.replay(sequence, record_timeline=False)
        profile = simulator.replay_peak_profile(sequence)
        for result in (peak_only, profile.result):
            assert result.peak_reserved_bytes == full.peak_reserved_bytes
            assert result.peak_allocated_bytes == full.peak_allocated_bytes
            assert result.num_events == full.num_events
            assert result.oom is False and result.oom_ts is None

    def test_profile_answers_bounded_queries_exactly(self):
        sequence = synthetic_sequence()
        profile = MemorySimulator().replay_peak_profile(sequence)
        peak = profile.result.peak_reserved_bytes
        # a capacity above the unbounded peak: closed form serves it
        roomy = peak + MiB
        assert profile.would_oom(roomy) is False
        served = profile.query(roomy)
        bounded = MemorySimulator(capacity_bytes=roomy).replay(
            sequence, record_timeline=False
        )
        assert served.peak_reserved_bytes == bounded.peak_reserved_bytes
        assert served.peak_allocated_bytes == bounded.peak_allocated_bytes
        assert served.num_events == bounded.num_events
        assert served.oom == bounded.oom is False

    def test_profile_refuses_oom_capacities(self):
        sequence = synthetic_sequence()
        profile = MemorySimulator().replay_peak_profile(sequence)
        tight = profile.result.peak_reserved_bytes - 1
        assert profile.would_oom(tight) is True
        assert profile.query(tight) is None
        first = profile.first_oom_event(tight)
        assert first is not None
        # the running max is monotone: every event before `first` fits
        assert profile.reserved_running_max[first - 1] <= tight

    def test_bounded_simulator_rejects_peak_profile(self):
        with pytest.raises(ValueError):
            MemorySimulator(capacity_bytes=64 * MiB).replay_peak_profile(
                synthetic_sequence()
            )

    def test_pipeline_simulate_cache_serves_peak_only_repeats(self):
        cache = PipelineCache()
        pipeline = EstimationPipeline(iterations=2, cache=cache)
        sequence = synthetic_sequence()
        first, source = pipeline._simulate_stage(
            sequence, DEFAULT_CONFIG, True, None, False
        )
        assert source == SOURCE_COMPUTE
        second, source = pipeline._simulate_stage(
            sequence, DEFAULT_CONFIG, True, None, False
        )
        assert source == SOURCE_MEMORY
        assert second is first  # the cached unbounded result, verbatim
        # curve requests never touch the cache: the timeline is the point
        curved, source = pipeline._simulate_stage(
            sequence, DEFAULT_CONFIG, True, None, True
        )
        assert source == SOURCE_COMPUTE
        assert len(curved.timeline) > 0
        assert curved.peak_reserved_bytes == first.peak_reserved_bytes

    def test_pipeline_simulate_oom_capacity_falls_back_to_replay(self):
        cache = PipelineCache()
        pipeline = EstimationPipeline(iterations=2, cache=cache)
        sequence = synthetic_sequence()
        unbounded, _ = pipeline._simulate_stage(
            sequence, DEFAULT_CONFIG, True, None, False
        )
        tight = unbounded.peak_reserved_bytes // 2
        via_pipeline, source = pipeline._simulate_stage(
            sequence, DEFAULT_CONFIG, True, tight, False
        )
        direct = MemorySimulator(capacity_bytes=tight).replay(
            sequence, record_timeline=False
        )
        assert source == SOURCE_COMPUTE
        assert via_pipeline.oom == direct.oom
        assert via_pipeline.oom_ts == direct.oom_ts
        assert (
            via_pipeline.peak_reserved_bytes == direct.peak_reserved_bytes
        )
        assert via_pipeline.num_events == direct.num_events

    def test_sequence_fingerprint_is_stable_and_memoized(self):
        one = synthetic_sequence()
        two = synthetic_sequence()
        assert sequence_fingerprint(one) == sequence_fingerprint(two)
        assert sequence_fingerprint(one) is sequence_fingerprint(one)
        # pipeline-stamped sequences skip hashing entirely
        one.fingerprint = None
        object.__setattr__(one, "fingerprint", "orch:stamped")
        assert sequence_fingerprint(one) == "orch:stamped"

    def test_warm_estimator_serves_simulate_from_memory(self):
        estimator = XMemEstimator(iterations=2, curve=False)
        first = estimator.estimate(WORKLOAD, RTX_3060)
        second = estimator.estimate(WORKLOAD, RTX_3060)
        assert second.stage_sources[SIMULATE] == SOURCE_MEMORY
        assert second.peak_bytes == first.peak_bytes
        assert second.detail == first.detail


# ----------------------------------------------------------------------
# end-to-end: pipeline over a persistent store
# ----------------------------------------------------------------------


class TestPipelineWithArtifactStore:
    def test_second_cache_starts_warm_from_the_store(self, tmp_path):
        path = str(tmp_path / "store.sqlite")
        cold = XMemEstimator(
            iterations=2,
            curve=False,
            stage_cache=PipelineCache(artifact_store=ArtifactStore(path)),
        )
        first = cold.estimate(WORKLOAD, RTX_3060)
        assert set(first.stage_sources.values()) == {SOURCE_COMPUTE}
        warm = XMemEstimator(
            iterations=2,
            curve=False,
            stage_cache=PipelineCache(artifact_store=ArtifactStore(path)),
        )
        second = warm.estimate(WORKLOAD, RTX_3060)
        # profile/analyze/orchestrate come from the store; simulate is
        # L1-only and this cache is fresh, so it recomputes
        assert second.stage_sources["profile"] == SOURCE_STORE
        assert second.stage_sources["analyze"] == SOURCE_STORE
        assert second.stage_sources["orchestrate"] == SOURCE_STORE
        assert second.peak_bytes == first.peak_bytes
        assert second.detail == first.detail

    def test_artifact_key_is_process_stable(self):
        # repr-based addressing: primitive tuples hash identically across
        # processes (unlike salted hash())
        key = ("profile", "MobileNetV3Small", "sgd", 4, "pos1", True, 2)
        assert artifact_key("profile", key) == artifact_key("profile", key)
        assert artifact_key("profile", key) != artifact_key("analyze", key)

    def test_store_metrics_flow_through_service(self, tmp_path):
        from repro.service import EstimationService

        path = str(tmp_path / "store.sqlite")
        XMemEstimator(
            iterations=2, curve=False, artifact_store=ArtifactStore(path)
        ).estimate(WORKLOAD, RTX_3060)  # warm the store
        service = EstimationService(
            estimator=XMemEstimator(
                iterations=2,
                curve=False,
                artifact_store=ArtifactStore(path),
            )
        )
        with service:
            service.estimate(WORKLOAD, RTX_3060)
            stats = service.stats()
        sources = stats["service"]["stage_sources"]
        assert sources.get("profile:store") == 1
        assert sources.get("simulate:compute") == 1
