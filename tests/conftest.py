"""Shared fixtures: tiny models and cached traces keep the suite fast."""

from __future__ import annotations

import pytest

from repro.framework.layers import Conv2d, Linear, ReLU, make_activation
from repro.framework.loss import CrossEntropyLoss
from repro.framework.module import Sequential
from repro.framework.optim import make_optimizer
from repro.framework.tensor import TensorMeta
from repro.models.registry import ModelSpec
from repro.runtime.backend import CpuBackend, GpuBackend
from repro.runtime.engine import TrainingEngine
from repro.runtime.loop import TrainLoopConfig
from repro.runtime.profiler import profile_on_cpu
from repro.runtime.sink import NullSink
from repro.trace.builder import TraceBuilder
from repro.workload import DeviceSpec


class TinyNet(Sequential):
    """A 3-layer MLP — enough structure for engine/pipeline tests."""

    def __init__(self, in_features: int = 64, hidden: int = 128, classes: int = 10):
        super().__init__(
            Linear(in_features, hidden, name="fc1"),
            ReLU(name="act1"),
            Linear(hidden, hidden, name="fc2"),
            ReLU(name="act2"),
            Linear(hidden, classes, name="fc3"),
            name="tiny",
        )


class TinyConvNet(Sequential):
    """A small CNN exercising conv workspaces and saved indices."""

    def __init__(self, channels: int = 8, classes: int = 10):
        from repro.framework.layers import Flatten, MaxPool2d

        super().__init__(
            Conv2d(3, channels, 3, padding=1, name="conv1"),
            make_activation("relu", inplace=True),
            MaxPool2d(2),
            Conv2d(channels, channels * 2, 3, padding=1, name="conv2"),
            make_activation("relu", inplace=True),
            MaxPool2d(2),
            Flatten(),
            Linear(channels * 2 * 8 * 8, classes, name="fc"),
            name="tinyconv",
        )


def tiny_spec(image_size: int = 32) -> ModelSpec:
    """A ModelSpec for TinyConvNet, usable wherever registry specs are."""
    from repro.framework.dtypes import DType

    return ModelSpec(
        name="TinyConvNet",
        family="cnn",
        build=lambda: TinyConvNet(),
        input_meta=lambda batch: TensorMeta((batch, 3, image_size, image_size)),
        label_meta=lambda batch: TensorMeta((batch,), dtype=DType.int64),
    )


@pytest.fixture
def tiny_model_spec() -> ModelSpec:
    return tiny_spec()


@pytest.fixture
def small_device() -> DeviceSpec:
    from repro.units import MiB

    return DeviceSpec(
        name="test-gpu", capacity_bytes=2048 * MiB, framework_bytes=64 * MiB
    )


def run_tiny_engine(
    loop: TrainLoopConfig | None = None,
    backend=None,
    sink=None,
    tracer: TraceBuilder | None = None,
    batch_size: int = 4,
    optimizer: str = "adam",
):
    """Drive TinyConvNet through the engine; returns (engine, result)."""
    spec = tiny_spec()
    engine = TrainingEngine(
        model=spec.build(),
        input_meta=spec.input_meta(batch_size),
        label_meta=spec.label_meta(batch_size),
        optimizer=make_optimizer(optimizer),
        backend=backend or CpuBackend(),
        sink=sink if sink is not None else NullSink(),
        loop=loop or TrainLoopConfig(iterations=2),
        tracer=tracer,
        loss=CrossEntropyLoss(),
    )
    result = engine.run()
    return engine, result


@pytest.fixture(scope="session")
def tiny_trace():
    """A 3-iteration CPU profile of TinyConvNet (session-cached)."""
    return profile_on_cpu(tiny_spec(), batch_size=4, optimizer="adam")


@pytest.fixture(scope="session")
def distilgpt2_trace():
    """A real-model trace for pipeline tests (session-cached)."""
    return profile_on_cpu("distilgpt2", batch_size=2, optimizer="adamw")


@pytest.fixture(scope="session")
def gpu_backend():
    return GpuBackend(seed=11)
