"""Resilience plane: retry/backoff, breakers, hedging, recovery.

Unit-tests the sans-IO decision objects in
:mod:`repro.service.resilience`, then integration-tests them through the
thread-driver :class:`~repro.service.gateway.ServiceGateway` against
seeded :class:`~repro.service.faults.FaultPlan` chaos: blackouts are
retried around, breakers open and re-route, hedges duplicate slow
requests, drain sheds backoff-parked requests with a typed error, and —
the property the whole plane is built around — the ledger's resilience
decision sequence is identical across same-seed runs.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    InjectedFaultError,
    RateLimitExceededError,
    RequestRejectedError,
    ShardBlackoutError,
)
from repro.service import (
    BreakerConfig,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    HedgePolicy,
    ResilienceCore,
    ResiliencePolicy,
    RetryBudget,
    RetryPolicy,
    ServiceGateway,
    SyntheticEstimator,
    Telemetry,
    default_resilience,
    generate_traffic,
    is_transient,
    replay,
    workload_catalog,
)
from repro.service.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.workload import EVAL_DEVICES

DEVICE = EVAL_DEVICES[0]


def make_gateway(
    num_shards=2,
    resilience=None,
    fault_plan=None,
    telemetry=None,
    work_seconds=0.0,
):
    return ServiceGateway(
        num_shards=num_shards,
        estimator_factory=lambda: SyntheticEstimator(
            work_seconds=work_seconds
        ),
        max_queue_depth=128,
        telemetry=telemetry,
        resilience=resilience,
        fault_plan=fault_plan,
    )


class TestTransience:
    @pytest.mark.parametrize(
        "error",
        [
            InjectedFaultError("estimator_error"),
            ShardBlackoutError(1),
            ConnectionLostError((), "gone"),
            RateLimitExceededError(0.5),
        ],
    )
    def test_transient_failures(self, error):
        assert is_transient(error)

    @pytest.mark.parametrize(
        "error",
        [
            RequestRejectedError("bad request"),
            ValueError("programmer error"),
            KeyboardInterrupt(),
        ],
    )
    def test_terminal_failures(self, error):
        assert not is_transient(error)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay("fp", 2) == policy.delay("fp", 2)

    def test_backoff_is_exponential_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=2.0, max_delay=1.0, jitter=0.0
        )
        assert policy.delay("fp", 2) == pytest.approx(0.01)
        assert policy.delay("fp", 3) == pytest.approx(0.02)
        assert policy.delay("fp", 4) == pytest.approx(0.04)

    def test_delay_is_capped(self):
        policy = RetryPolicy(
            base_delay=0.01, multiplier=10.0, max_delay=0.05, jitter=0.5
        )
        for attempt in range(2, 12):
            assert policy.delay("fp", attempt) <= 0.05 * 1.5

    def test_jitter_decorrelates_fingerprints(self):
        policy = RetryPolicy(jitter=1.0)
        assert policy.delay("alpha", 2) != policy.delay("beta", 2)

    def test_rejections_not_retryable(self):
        assert not RetryPolicy().retryable(RequestRejectedError("no"))
        assert RetryPolicy().retryable(InjectedFaultError("yes"))


class TestRetryBudget:
    def test_burst_then_ratio(self):
        budget = RetryBudget(ratio=0.0, burst=2)
        assert budget.allow()
        budget.spend()
        assert budget.allow()
        budget.spend()
        assert not budget.allow()
        assert budget.snapshot()["denied"] == 1

    def test_ratio_grows_with_traffic(self):
        budget = RetryBudget(ratio=0.5, burst=0)
        assert not budget.allow()
        for _ in range(4):
            budget.note_request()
        assert budget.allow()


class TestCircuitBreaker:
    def live(self, threshold=2, cooldown=3):
        return CircuitBreaker(
            BreakerConfig(
                failure_threshold=threshold,
                cooldown_ticks=cooldown,
                deferred=False,
            )
        )

    def test_consecutive_failures_trip_the_circuit(self):
        breaker = self.live(threshold=2)
        assert breaker.record(0, ok=False) is None
        assert breaker.record(1, ok=False) == BREAKER_OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self.live(threshold=2)
        breaker.record(0, ok=False)
        breaker.record(1, ok=True)
        assert breaker.record(2, ok=False) is None
        assert breaker.state == BREAKER_CLOSED

    def test_cooldown_elapses_in_submission_ticks(self):
        breaker = self.live(threshold=1, cooldown=2)
        breaker.record(0, ok=False)
        assert breaker.tick() is None
        assert breaker.tick() == BREAKER_HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker = self.live(threshold=1, cooldown=1)
        breaker.record(0, ok=False)
        breaker.tick()
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else waits

    def test_probe_success_closes_failure_reopens(self):
        breaker = self.live(threshold=1, cooldown=1)
        breaker.record(0, ok=False)
        breaker.tick()
        breaker.allow()
        assert breaker.record(1, ok=True) == BREAKER_CLOSED
        assert breaker.closes == 1

        breaker.record(2, ok=False)
        breaker.tick()
        breaker.allow()
        assert breaker.record(3, ok=False) == BREAKER_OPEN

    def test_deferred_outcomes_apply_in_submission_order(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=2, deferred=True)
        )
        # completion order scrambled: the success lands between the
        # failures once sorted by seq, so the streak never reaches 2
        breaker.record(2, ok=False)
        breaker.record(0, ok=False)
        breaker.record(1, ok=True)
        assert breaker.sync() == []
        assert breaker.state == BREAKER_CLOSED
        # the same outcomes with the success first do trip it
        breaker.record(0, ok=True)
        breaker.record(1, ok=False)
        breaker.record(2, ok=False)
        assert breaker.sync() == [BREAKER_OPEN]


class TestResilienceCore:
    def core(self, num_shards=3):
        return ResilienceCore(
            num_shards,
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=3),
                breaker=BreakerConfig(failure_threshold=1, deferred=False),
            ),
        )

    def trip(self, core, shard):
        core.record_outcome(shard, 0, ok=False)

    def test_choose_shard_prefers_primary(self):
        assert self.core().choose_shard(1) == (1, False)

    def test_choose_shard_routes_around_open_circuit(self):
        core = self.core()
        self.trip(core, 1)
        assert core.choose_shard(1) == (2, True)
        assert core.counters["reroutes"] == 1

    def test_choose_shard_sheds_when_all_circuits_open(self):
        core = self.core()
        for shard in range(3):
            self.trip(core, shard)
        assert core.choose_shard(0) == (None, True)

    def test_retry_target_moves_off_the_failed_shard(self):
        core = self.core()
        assert core.retry_target(0, attempt=2) == 1

    def test_retry_target_falls_back_to_sole_healthy_shard(self):
        core = self.core()
        self.trip(core, 1)
        self.trip(core, 2)
        assert core.retry_target(0, attempt=2) == 0

    def test_should_retry_respects_attempts_and_budget(self):
        core = ResilienceCore(
            2,
            ResiliencePolicy(
                retry=RetryPolicy(max_attempts=2),
                budget=RetryBudget(ratio=0.0, burst=1),
            ),
        )
        error = InjectedFaultError("boom")
        assert core.should_retry(error, attempt=1)
        assert not core.should_retry(error, attempt=2)  # attempts exhausted
        core.spend_retry()
        assert not core.should_retry(error, attempt=1)  # budget exhausted
        assert not core.should_retry(ValueError("fatal"), attempt=1)

    def test_snapshot_shape(self):
        snap = self.core().snapshot()
        assert snap["breaker_states"] == ["closed"] * 3
        assert snap["retries"] == 0


class TestHedgePolicy:
    def test_fixed_threshold_wins(self):
        assert HedgePolicy(after_seconds=0.2).threshold([0.001]) == 0.2

    def test_percentile_threshold_with_floor(self):
        policy = HedgePolicy(percentile=50.0, floor_seconds=0.005)
        assert policy.threshold([]) == 0.005
        assert policy.threshold([0.001, 0.002, 0.003]) == 0.005  # floored
        assert policy.threshold([0.1, 0.2, 0.4]) == 0.2


class TestGatewayUnderChaos:
    """Integration: the thread-driver shell wired to planned faults."""

    def blackout_plan(self, gateway, workloads, stop=100):
        """Black out the shard that serves ``workloads[0]`` from index 0."""
        victim = gateway.shard_for(workloads[0], DEVICE)
        return victim, FaultPlan.from_specs(
            [FaultSpec(kind="shard_blackout", start=0, stop=stop, shard=victim)]
        )

    def test_blackout_is_retried_on_another_shard(self):
        workloads = workload_catalog(4, seed=0)
        with make_gateway(num_shards=2) as probe:
            victim, plan = self.blackout_plan(probe, workloads)
        telemetry = Telemetry()
        with make_gateway(
            num_shards=2,
            resilience=default_resilience(),
            fault_plan=plan,
            telemetry=telemetry,
        ) as gateway:
            results = [gateway.estimate(w, DEVICE) for w in workloads]
            stats = gateway.stats()["gateway"]
        assert all(r.peak_bytes > 0 for r in results)
        assert stats["faults"]["injected"]["shard_blackout"] >= 1
        assert stats["resilience"]["retries"] >= 1
        events = [e for e, *_ in telemetry.ledger.resilience_sequence()]
        assert "retry" in events

    def test_breaker_opens_and_reroutes_sustained_blackout(self):
        workloads = workload_catalog(6, seed=1)
        with make_gateway(num_shards=2) as probe:
            victim = probe.shard_for(workloads[0], DEVICE)
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="shard_blackout", start=0, stop=500, shard=victim)]
        )
        with make_gateway(
            num_shards=2,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(base_delay=0.001, jitter=0.0),
                breaker=BreakerConfig(
                    failure_threshold=2, cooldown_ticks=500
                ),
            ),
            fault_plan=plan,
        ) as gateway:
            for _ in range(3):  # repeat until the victim's breaker trips
                for workload in workloads:
                    gateway.estimate(workload, DEVICE)
            stats = gateway.stats()["gateway"]["resilience"]
        assert stats["breaker_opens"] >= 1
        assert stats["reroutes"] >= 1
        assert stats["breaker_states"][victim] == "open"

    def test_hedge_duplicates_slow_request_and_wins(self):
        workloads = workload_catalog(2, seed=0)
        plan = FaultPlan.from_specs(
            [
                FaultSpec(
                    kind="latency_spike", index=0, latency_seconds=0.5
                )
            ]
        )
        with make_gateway(
            num_shards=2,
            resilience=ResiliencePolicy(
                retry=None,
                breaker=None,
                hedge=HedgePolicy(after_seconds=0.01),
            ),
            fault_plan=plan,
        ) as gateway:
            started = time.perf_counter()
            result = gateway.estimate(workloads[0], DEVICE)
            elapsed = time.perf_counter() - started
            stats = gateway.stats()["gateway"]["resilience"]
        assert result.peak_bytes > 0
        assert stats["hedges"] == 1
        assert stats["hedge_wins"] == 1
        # the hedge answered while the primary was still in its spike
        assert elapsed < 0.5

    def test_drain_sheds_backoff_parked_requests(self):
        """Satellite regression: drain during open-circuit backoff.

        A request parked in retry backoff holds no shard slot; drain
        must settle it immediately as shed with a typed
        :class:`CircuitOpenError` instead of blocking on the timer.
        """
        workloads = workload_catalog(1, seed=0)
        plan = FaultPlan.from_specs(
            [FaultSpec(kind="estimator_error", index=0)]
        )
        telemetry = Telemetry()
        gateway = make_gateway(
            num_shards=2,
            resilience=ResiliencePolicy(
                retry=RetryPolicy(
                    base_delay=30.0, max_delay=60.0, jitter=0.0
                ),
                breaker=None,
            ),
            fault_plan=plan,
            telemetry=telemetry,
        )
        try:
            future = gateway.submit(workloads[0], DEVICE)
            deadline = time.time() + 5.0
            while not gateway._retry_states and time.time() < deadline:
                time.sleep(0.001)  # wait for the retry to park
            assert gateway._retry_states, "request never parked in backoff"
            assert gateway.drain(timeout=5.0)
            with pytest.raises(CircuitOpenError):
                future.result(timeout=5.0)
            stats = gateway.stats()["gateway"]["resilience"]
            assert stats["shed_on_drain"] == 1
            causes = [
                c for _, c, *_ in telemetry.ledger.resilience_sequence()
            ]
            assert "drained_during_backoff" not in causes  # shed, not retry
            sheds = [
                event
                for event in telemetry.ledger.events()
                if event.cause == "drained_during_backoff"
            ]
            assert len(sheds) == 1
        finally:
            gateway.close(wait=False)


class TestSeededChaosDeterminism:
    """Satellite property: same seed, same decision sequence (twice)."""

    def run_sequence(self, trace, plan):
        telemetry = Telemetry()
        with make_gateway(
            num_shards=4,
            resilience=default_resilience(),
            fault_plan=plan,
            telemetry=telemetry,
        ) as gateway:
            report = replay(trace, gateway)
        assert report.answered + report.shed + report.errors == len(trace)
        return telemetry.ledger.resilience_sequence()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_seeded_plan_replays_identically(self, seed):
        trace = generate_traffic("zipf", 24, seed=seed)
        plan = FaultPlan.seeded(
            seed,
            24,
            4,
            error_rate=0.15,
            latency_rate=0.0,
            blackouts=1,
            blackout_span=12,
        )
        first = self.run_sequence(trace, plan)
        second = self.run_sequence(trace, plan)
        assert first == second
