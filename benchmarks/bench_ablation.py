"""Ablations of xMem's design choices (DESIGN.md, 'Key design decisions').

1. two-level allocator simulation vs single-level (DNNMem-style);
2. orchestration rules vs raw CPU lifecycles;
3. segment-level accounting vs tensor-byte summing (Horus-style);
4. >=2 profiled iterations vs 1 (stateful-optimizer capture).
"""

from __future__ import annotations

from repro.core.estimator import XMemEstimator
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.units import GB
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

WORKLOAD = WorkloadConfig("distilgpt2", "adam", 8)

VARIANTS = {
    "xMem (full)": XMemEstimator(),
    "no orchestrator": XMemEstimator(orchestrate=False),
    "tensor accounting": XMemEstimator(account="tensor"),
    "single-level sim": XMemEstimator(two_level=False),
    "1-iteration profile": XMemEstimator(iterations=1),
}


def test_ablations(benchmark, capsys):
    truth = run_gpu_ground_truth(
        WORKLOAD.model,
        WORKLOAD.batch_size,
        WORKLOAD.optimizer,
        capacity_bytes=RTX_3060.job_budget(),
        seed=21,
    )
    rows = [
        f"workload: {WORKLOAD.label()}  ground truth "
        f"{truth.measured_peak / GB:.2f} GB",
        f"{'variant':<22}{'estimate':>10}{'error':>9}",
    ]
    estimates = {}
    for name, estimator in VARIANTS.items():
        result = estimator.estimate(WORKLOAD, RTX_3060)
        estimates[name] = result.peak_bytes
        error = (
            (result.peak_bytes - truth.measured_peak) / truth.measured_peak
        )
        rows.append(
            f"{name:<22}{result.peak_bytes / GB:>9.2f}G{error * 100:>+8.1f}%"
        )
    emit("ablation", "\n".join(rows), capsys)

    full = estimates["xMem (full)"]
    full_error = abs(full - truth.measured_peak)
    # 2. raw CPU lifecycles keep gradients alive too long -> overestimate
    assert estimates["no orchestrator"] > full
    # 3. summing tensor bytes ignores segments/rounding -> underestimate
    assert estimates["tensor accounting"] < full
    assert abs(estimates["tensor accounting"] - truth.measured_peak) > full_error
    # 4. a 1-iteration profile misses the stabilized optimizer peak
    assert estimates["1-iteration profile"] < full

    benchmark(lambda: VARIANTS["xMem (full)"].estimate(WORKLOAD, RTX_3060))
