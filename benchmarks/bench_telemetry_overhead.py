"""Telemetry overhead gate + cross-driver observability identity.

Two acceptance properties for ``repro.service.telemetry``:

1. **Identity** — with tracing and the audit ledger enabled
   (``detail="full"``), all three drivers (threads, asyncio, process
   pool) answer the same deterministic warm-cache trace with
   byte-identical estimator results, identical canonical span trees,
   and identical ledger decision sequences.

2. **Overhead** — enabling default telemetry (``detail="standard"``)
   costs at most 10% throughput on a warm-cache loadtest of the
   process-pool driver (median on/off ratio >= 0.90 over paired,
   interleaved runs, so a single scheduler hiccup on a 1-CPU CI runner
   cannot flip the verdict).

What the baseline includes, and why the procpool driver is the gated
configuration: a warm-cache request on the thread or asyncio driver is
a few tens of microseconds of pure-Python dispatch, while telemetry
adds a fixed ~5-10us of span/ledger bookkeeping — an honest but large
fraction of a nearly-free request, with run-to-run wall-clock swings of
+/-20% on a single core.  The process driver's per-request cost is
dominated by IPC and pickling — the realistic deployment regime for
the serving stack — so the telemetry fraction is small and the paired
ratio is stable.  The thread and asyncio ratios are reported in every
run (informational), and the thread driver additionally carries an
**absolute** bound: telemetry may add at most ``MAX_ADDED_MICROS``
microseconds per request (generous vs. the ~10us measured), so a
regression that bloats span or ledger construction fails loudly even
though the thread *ratio* is not gated.

``python bench_telemetry_overhead.py [--smoke]`` runs standalone
(``--smoke`` shrinks pair counts for CI); under pytest the smoke size
is used.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import sys
from functools import partial

from repro.core.estimator import XMemEstimator
from repro.service import (
    AsyncServiceGateway,
    ProcServiceGateway,
    ServiceGateway,
    SyntheticEstimator,
    Telemetry,
    canonical_trace_trees,
    make_policy,
    replay,
    replay_async,
)
from repro.service.traffic import TrafficRequest, TrafficTrace
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

NUM_SHARDS = 2
#: acceptance floor for the gated (procpool) on/off throughput ratio
MIN_RATIO = 0.90
#: absolute ceiling on telemetry's added cost per thread-driver request
MAX_ADDED_MICROS = 75.0

# module-level partials: picklable estimator factories for the procpool
fast_synthetic = partial(SyntheticEstimator, work_seconds=0.0)
real_estimator = partial(XMemEstimator, iterations=1)

#: identity-check workloads — unique fingerprints within each wave, so
#: the ledger decision sequence is a cross-driver invariant (intra-wave
#: duplicates race between dedup and cache-hit by scheduling)
IDENTITY_WORKLOADS = [
    WorkloadConfig("MobileNetV3Small", "sgd", size) for size in (1, 2, 4, 8)
]


def _trace(workloads, waves: int) -> TrafficTrace:
    requests = [
        TrafficRequest(workload=workload, device=RTX_3060, wave=wave)
        for wave in range(waves)
        for workload in workloads
    ]
    return TrafficTrace(scenario="warm", seed=0, requests=tuple(requests))


# --------------------------------------------------------------- identity


def _run_threads(trace, factory, telemetry, probes=()):
    with ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy("hash", NUM_SHARDS, seed=0),
        telemetry=telemetry,
    ) as gateway:
        report = replay(trace, gateway)
        results = [gateway.estimate(w, RTX_3060) for w in probes]
    return report, results


def _run_asyncio(trace, factory, telemetry, probes=()):
    async def _go():
        gateway = AsyncServiceGateway(
            num_shards=NUM_SHARDS,
            estimator_factory=factory,
            policy=make_policy("hash", NUM_SHARDS, seed=0),
            telemetry=telemetry,
        )
        try:
            report = await replay_async(trace, gateway)
            results = [await gateway.estimate(w, RTX_3060) for w in probes]
            return report, results
        finally:
            await gateway.aclose()

    return asyncio.run(_go())


def _run_procpool(trace, factory, telemetry, probes=()):
    with ProcServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy("hash", NUM_SHARDS, seed=0),
        pool_workers=2,
        telemetry=telemetry,
    ) as gateway:
        report = replay(trace, gateway)
        results = [gateway.estimate(w, RTX_3060) for w in probes]
    return report, results


DRIVERS = {
    "threads": _run_threads,
    "asyncio": _run_asyncio,
    "procpool": _run_procpool,
}


def check_driver_identity() -> dict:
    """Same trace, full telemetry: three drivers, one observable story."""
    trace = _trace(IDENTITY_WORKLOADS, waves=3)
    outcomes = {}
    for name, runner in DRIVERS.items():
        telemetry = Telemetry(detail="full")
        report, results = runner(
            trace, real_estimator, telemetry, probes=IDENTITY_WORKLOADS
        )
        assert report.answered == len(trace), (name, report.answered)
        outcomes[name] = {
            "payloads": [
                (r.peak_bytes, tuple(sorted(r.detail.items()))) for r in results
            ],
            "trees": canonical_trace_trees(telemetry.spans()),
            "decisions": telemetry.ledger.decision_sequence(),
            "summary": telemetry.ledger.summary(),
        }
    reference = outcomes["threads"]
    for name, outcome in outcomes.items():
        assert outcome["payloads"] == reference["payloads"], name
        assert outcome["trees"] == reference["trees"], name
        assert outcome["decisions"] == reference["decisions"], name
        assert outcome["summary"] == reference["summary"], name
    return {
        "num_requests": len(trace),
        "traces": len(reference["trees"]),
        "decisions": len(reference["decisions"]),
        "decision_summary": reference["summary"],
        "byte_identical": True,
        "drivers": sorted(DRIVERS),
    }


# --------------------------------------------------------------- overhead


def measure_overhead(driver: str, pairs: int, waves: int) -> dict:
    """Median paired on/off throughput ratio for one driver.

    Each pair interleaves a telemetry-off run with a telemetry-on run
    (default ``detail="standard"``) over the same warm-cache trace, so
    slow drift in machine load hits both sides of every ratio.
    """
    workloads = [
        WorkloadConfig("MobileNetV2", "sgd", size)
        for size in (1, 2, 4, 8, 16, 32, 64, 128)
    ]
    trace = _trace(workloads, waves=waves)
    runner = DRIVERS[driver]
    runner(trace, fast_synthetic, None)  # warm-up: imports, pools, caches
    ratios, added_micros = [], []
    for _ in range(pairs):
        off, _ = runner(trace, fast_synthetic, None)
        on, _ = runner(trace, fast_synthetic, Telemetry())
        ratios.append(on.throughput_rps / off.throughput_rps)
        added_micros.append(
            (1.0 / on.throughput_rps - 1.0 / off.throughput_rps) * 1e6
        )
    return {
        "driver": driver,
        "num_requests": len(trace),
        "pairs": pairs,
        "ratios": [round(r, 4) for r in ratios],
        "median_ratio": round(statistics.median(ratios), 4),
        "median_added_us_per_request": round(
            statistics.median(added_micros), 2
        ),
    }


def run_telemetry_bench(pairs: int = 3, waves: int = 6) -> dict:
    report = {
        "identity": check_driver_identity(),
        "overhead": {
            name: measure_overhead(name, pairs=pairs, waves=waves)
            for name in DRIVERS
        },
        "gate": {
            "gated_driver": "procpool",
            "min_ratio": MIN_RATIO,
            "thread_max_added_us": MAX_ADDED_MICROS,
        },
    }
    _check(report)
    return report


def _check(report: dict) -> None:
    assert report["identity"]["byte_identical"]
    gated = report["overhead"]["procpool"]["median_ratio"]
    assert gated >= MIN_RATIO, (
        f"procpool telemetry-on/off throughput ratio {gated:.3f} below "
        f"the {MIN_RATIO:.2f} floor (>10% overhead)"
    )
    added = report["overhead"]["threads"]["median_added_us_per_request"]
    assert added <= MAX_ADDED_MICROS, (
        f"thread-driver telemetry adds {added:.1f}us per request, above "
        f"the {MAX_ADDED_MICROS:.0f}us ceiling — span/ledger hot path "
        "has regressed"
    )


def test_telemetry_overhead(capsys):
    report = run_telemetry_bench(pairs=3, waves=6)
    emit("telemetry_overhead", json.dumps(report, indent=2), capsys)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    bench_report = run_telemetry_bench(
        pairs=3 if smoke else 7, waves=6 if smoke else 10
    )
    emit("telemetry_overhead", json.dumps(bench_report, indent=2))
