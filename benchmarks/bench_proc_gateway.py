"""Process-pool driver vs. thread driver: same sans-IO core, no shared GIL.

Races :class:`~repro.service.procpool.ProcServiceGateway` (policy inline
in the parent, estimation in worker processes) against the thread-driven
:class:`~repro.service.gateway.ServiceGateway` on the identical
:class:`~repro.service.core.GatewayCore` state machine.

Acceptance (asserted):

* **byte identity** — results served through the process driver equal
  direct estimator calls and the thread driver exactly (real
  ``XMemEstimator`` peaks + role breakdown, and the deterministic
  synthetic peaks on *every* traffic scenario);
* **accounting** — both drivers account for every generated request
  (answered + shed + rejected + errors) on every scenario and reject
  the same adversarial requests;
* **throughput** — on a **cold-cache, unique-fingerprint, CPU-bound**
  stream (every request a distinct fingerprint, estimation a pure-Python
  busy loop that holds the GIL) with 4 workers each, the process driver
  sustains >= 1.5x the thread driver's throughput.  Threads cannot scale
  a GIL-bound stage past one core; processes can.  The assertion needs
  real parallelism, so it degrades with the host: full 1.5x bar on >= 4
  CPUs (the CI runner), a weaker bar on 2-3, report-only on 1.

``python bench_proc_gateway.py [--smoke]`` runs standalone (``--smoke``
shrinks the replay for CI); under pytest the smoke size is used.
"""

from __future__ import annotations

import json
import os
import sys
from functools import partial

from repro.core.estimator import XMemEstimator
from repro.service import (
    SCENARIO_NAMES,
    ProcServiceGateway,
    ServiceGateway,
    SyntheticEstimator,
    TrafficRequest,
    TrafficTrace,
    generate_traffic,
    make_policy,
    replay,
)
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

NUM_SHARDS = 4
#: workers for the CPU-bound race — 4 threads vs. 4 processes, per ISSUE
NUM_WORKERS = 4
#: simulated sleep cost for the scenario sweep (GIL-released: both
#: drivers overlap it, so the sweep checks accounting, not parallelism)
WORK_SECONDS = 0.001
#: simulated CPU-bound cost for the race (GIL-held busy loop)
SPIN_SECONDS = 0.02
ROUNDS = 2
MIN_PROC_SPEEDUP = 1.5


def _payload(report) -> dict:
    data = report.as_dict()
    aggregate = data.pop("stats")["aggregate"]
    data["cache_hit_rate"] = aggregate["cache_hit_rate"]
    data["workers"] = aggregate["workers"]
    return data


def _thread_gateway(factory, workers_per_shard: int = 2) -> ServiceGateway:
    return ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy("hash", NUM_SHARDS),
        max_workers_per_shard=workers_per_shard,
    )


def _proc_gateway(factory, pool_workers: int = NUM_WORKERS) -> ProcServiceGateway:
    return ProcServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy("hash", NUM_SHARDS),
        pool_workers=pool_workers,
    )


def check_byte_identity() -> dict:
    """The process driver must equal direct estimator calls exactly."""
    workloads = [
        WorkloadConfig("MobileNetV3Small", "sgd", 8),
        WorkloadConfig("MobileNetV3Small", "adam", 16),
    ]
    factory = partial(XMemEstimator, iterations=1, curve=False)
    with _proc_gateway(factory, pool_workers=2) as gateway:
        via_processes = [gateway.estimate(w, RTX_3060) for w in workloads]
    with _thread_gateway(factory) as gateway:
        via_threads = [gateway.estimate(w, RTX_3060) for w in workloads]
    direct = [factory().estimate(w, RTX_3060) for w in workloads]
    for proc, threaded, reference in zip(via_processes, via_threads, direct):
        assert proc.peak_bytes == reference.peak_bytes
        assert threaded.peak_bytes == reference.peak_bytes
        assert proc.detail == reference.detail
        assert threaded.detail == reference.detail
        assert proc.predicts_oom() == reference.predicts_oom()
        # the pickled round trip must not lose the staged breakdown the
        # parent merges into its metrics
        assert set(proc.stage_seconds) == set(reference.stage_seconds)
    return {
        "workloads": [w.label() for w in workloads],
        "peak_bytes": [r.peak_bytes for r in direct],
        "byte_identical": True,
    }


def run_scenarios(num_requests: int) -> dict:
    """Every traffic scenario through both drivers: accounting + peaks."""
    factory = partial(SyntheticEstimator, work_seconds=WORK_SECONDS)
    scenarios = {}
    for name in SCENARIO_NAMES:
        trace = generate_traffic(name, num_requests, seed=0)
        with _thread_gateway(factory) as gateway:
            threads_report = replay(trace, gateway)
        with _proc_gateway(factory, pool_workers=2) as gateway:
            proc_report = replay(trace, gateway)
        # per-scenario byte identity: the deterministic synthetic peak of
        # every *valid* unique request, served through each driver
        valid = {}
        for request in trace.requests:
            try:
                request.device.job_budget()
            except ValueError:
                continue  # adversarial budget-less device: both reject
            valid.setdefault(
                (request.workload.to_key(), request.device.to_key()),
                (request.workload, request.device),
            )
        probes = list(valid.values())[:8]
        with _thread_gateway(factory) as gateway:
            threads_peaks = [
                gateway.estimate(w, d).peak_bytes
                for w, d in probes
                if _is_valid_workload(w)
            ]
        with _proc_gateway(factory, pool_workers=2) as gateway:
            proc_peaks = [
                gateway.estimate(w, d).peak_bytes
                for w, d in probes
                if _is_valid_workload(w)
            ]
        scenarios[name] = {
            "threads": _payload(threads_report),
            "processes": _payload(proc_report),
            "peaks_byte_identical": threads_peaks == proc_peaks,
            "unique_probes": len(threads_peaks),
        }
    return scenarios


def _is_valid_workload(workload: WorkloadConfig) -> bool:
    from repro.errors import ModelNotFoundError
    from repro.models.registry import get_model_spec

    try:
        get_model_spec(workload.model)
    except ModelNotFoundError:
        return False
    return True


def cpu_bound_trace(num_requests: int) -> TrafficTrace:
    """Cold-cache worst case: every request a unique fingerprint.

    Distinct batch sizes defeat the result cache and single-flight
    dedup, so every request pays the (simulated) CPU-bound estimation —
    the traffic shape where the execution substrate is the bottleneck.
    """
    return TrafficTrace(
        scenario="cpu-bound-unique",
        seed=0,
        requests=tuple(
            TrafficRequest(
                workload=WorkloadConfig(
                    "MobileNetV3Small", "sgd", batch_size=1 + index
                ),
                device=RTX_3060,
                wave=0,
            )
            for index in range(num_requests)
        ),
    )


def _warm_substrate(gateway) -> None:
    """Force every worker (thread or process) to exist before timing.

    Both executors create workers lazily on first submit; the process
    pool additionally pays a per-worker interpreter/import start-up.
    The race measures steady-state serving throughput, so both drivers
    get the same pre-timed warm-up burst (distinct batch sizes from the
    timed trace, so the timed requests stay cold-cache misses).
    """
    warmup = [
        gateway.submit(
            WorkloadConfig("MobileNetV3Small", "adam", 10_000 + index),
            RTX_3060,
        )
        for index in range(NUM_WORKERS * 2)
    ]
    for future in warmup:
        future.result()


def run_throughput_race(num_requests: int) -> dict:
    """4 GIL-bound threads vs. 4 worker processes on unique requests."""
    factory = partial(SyntheticEstimator, spin_seconds=SPIN_SECONDS)
    trace = cpu_bound_trace(num_requests)

    threads_best = 0.0
    proc_best = 0.0
    proc_workers: dict = {}
    for _ in range(ROUNDS):
        # one worker thread per shard: 4 threads total, matching the
        # process pool's 4 workers
        with _thread_gateway(factory, workers_per_shard=1) as gateway:
            _warm_substrate(gateway)
            threads_best = max(
                threads_best, replay(trace, gateway).throughput_rps
            )
        with _proc_gateway(factory, pool_workers=NUM_WORKERS) as gateway:
            _warm_substrate(gateway)
            report = replay(trace, gateway)
            proc_best = max(proc_best, report.throughput_rps)
            proc_workers = report.stats["aggregate"]["workers"]
    return {
        "num_requests": num_requests,
        "spin_seconds": SPIN_SECONDS,
        "workers": NUM_WORKERS,
        "cpu_count": os.cpu_count(),
        "threads_rps": threads_best,
        "processes_rps": proc_best,
        "speedup": proc_best / threads_best if threads_best else None,
        "process_worker_distribution": proc_workers,
    }


def run_proc_bench(num_requests: int = 200) -> dict:
    race_requests = max(24, min(num_requests // 4, 64))
    return {
        "num_shards": NUM_SHARDS,
        "num_requests": num_requests,
        "rounds": ROUNDS,
        "scenarios": run_scenarios(num_requests),
        "cpu_bound_throughput": run_throughput_race(race_requests),
        "byte_identity": check_byte_identity(),
    }


def _check(report: dict) -> None:
    assert report["byte_identity"]["byte_identical"]
    for name, drivers in report["scenarios"].items():
        assert drivers["peaks_byte_identical"], name
        for driver in ("threads", "processes"):
            scenario = drivers[driver]
            total = (
                scenario["answered"]
                + scenario["shed"]
                + scenario["rejected"]
                + scenario["errors"]
            )
            assert total == scenario["num_requests"], (name, driver, scenario)
        # validation is deterministic: the drivers reject identically
        assert (
            drivers["threads"]["rejected"] == drivers["processes"]["rejected"]
        ), name
    assert report["scenarios"]["adversarial"]["processes"]["rejected"] > 0
    for name in ("uniform", "zipf", "bursty", "duplicate-storm"):
        for driver in ("threads", "processes"):
            assert report["scenarios"][name][driver]["errors"] == 0, name

    race = report["cpu_bound_throughput"]
    # the estimation work really spread across the pool
    assert len(race["process_worker_distribution"]) >= 2, race
    cpus = race["cpu_count"] or 1
    if cpus >= 4:
        required = MIN_PROC_SPEEDUP
    elif cpus >= 2:
        # two cores cannot show 1.5x over 4 workers' worth of spin, but
        # the process driver must still beat the GIL-serialized threads
        required = 1.1
    else:
        required = None  # single core: no parallelism to measure
    if required is not None:
        assert race["speedup"] >= required, (
            f"process driver {race['processes_rps']:,.1f} req/s is only "
            f"{race['speedup']:.2f}x the thread driver's "
            f"{race['threads_rps']:,.1f} req/s on the CPU-bound stream "
            f"(need >= {required}x on {cpus} CPUs)"
        )


def test_proc_gateway_driver(capsys):
    report = run_proc_bench(num_requests=120)
    emit("proc_gateway_driver", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    bench_report = run_proc_bench(num_requests=120 if smoke else 400)
    _check(bench_report)
    emit("proc_gateway_driver", json.dumps(bench_report, indent=2))
