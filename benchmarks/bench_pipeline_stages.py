"""Staged-pipeline speedup: intermediate-artifact caches vs. the cold chain.

The serving layer's final-result cache only helps exact repeats; this
benchmark measures what the **stage caches** (:mod:`repro.core.pipeline`)
recover on the traffic shape they were built for — a sweep over batch
sizes crossed with allocator-simulation variants, where every request is
a *distinct* fingerprint but almost all upstream work is shared:

* **cold** — stage caching disabled: every cell pays the full
  profile -> analyze -> orchestrate -> simulate chain;
* **warm** — every variant estimator shares one
  :class:`~repro.core.pipeline.PipelineCache`; after one warming pass,
  each cell re-runs only the simulator.

Acceptance (asserted):

* the warm sweep is >= 3x faster than the cold sweep;
* every warm peak is byte-identical to its cold counterpart;
* the warm pass profiles nothing (trace-store misses stay at the
  warming pass's unique-workload count).

Writes ``BENCH_pipeline.json`` at the repository root (CI uploads it as
an artifact).  ``python bench_pipeline_stages.py [--quick]`` runs
standalone; under pytest the quick size is used.

``--artifact-store PATH`` additionally wires the persistent L2
(:mod:`repro.core.artifacts`) under both sweeps: the "cold" estimators
share one capacity-zero L1 so every cell goes to sqlite, which is what a
fresh process with a warm store looks like.  ``--expect-warm-store``
(the second CI invocation against the same path) asserts the store
actually served: zero profile builds and at least one store hit per
unique workload during the cold sweep.  Store-mode runs write to
``--output`` (default ``BENCH_pipeline.json``) — CI points the store
lane at ``BENCH_pipeline_store.json`` so the plain regression gate keeps
comparing like with like.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.allocator.constants import DEFAULT_CONFIG
from repro.core.artifacts import open_artifact_store
from repro.core.estimator import XMemEstimator
from repro.core.pipeline import PipelineCache
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

ITERATIONS = 2
MIN_WARM_SPEEDUP = 3.0

#: simulation-side variants: they differ only in knobs the simulate stage
#: consumes, so a warm pipeline re-runs nothing upstream for them
VARIANTS = {
    "default": {},
    "no_split": {
        "allocator_config": replace(DEFAULT_CONFIG, allow_split=False)
    },
    "single_level": {"two_level": False},
}


def _grid(quick: bool) -> list[tuple[str, int]]:
    models = ["MobileNetV3Small"] if quick else ["MobileNetV3Small", "MnasNet"]
    batch_sizes = [4, 8] if quick else [4, 8, 16]
    return [(model, bs) for model in models for bs in batch_sizes]


def _sweep(estimators: dict[str, XMemEstimator], grid) -> dict[tuple, int]:
    """Run every (workload x variant) cell; returns peaks keyed by cell."""
    peaks: dict[tuple, int] = {}
    for model, batch_size in grid:
        workload = WorkloadConfig(model, "adam", batch_size)
        for variant, estimator in estimators.items():
            result = estimator.estimate(workload, RTX_3060)
            peaks[(model, batch_size, variant)] = result.peak_bytes
    return peaks


def run_pipeline_bench(
    quick: bool = True, artifact_store: str | None = None
) -> dict:
    grid = _grid(quick)
    store = open_artifact_store(artifact_store) if artifact_store else None
    counters_before = store.counters() if store else {}

    # --- cold: no L1 reuse; with a store, every cell goes to sqlite ----
    if store is None:
        cold_caches = {variant: False for variant in VARIANTS}
    else:
        zero_l1 = PipelineCache(
            max_traces=0,
            max_analyses=0,
            max_sequences=0,
            max_simulations=0,
            artifact_store=store,
        )
        cold_caches = {variant: zero_l1 for variant in VARIANTS}
    cold_estimators = {
        variant: XMemEstimator(
            iterations=ITERATIONS,
            curve=False,
            stage_cache=cold_caches[variant],
            **knobs,
        )
        for variant, knobs in VARIANTS.items()
    }
    started = time.perf_counter()
    cold_peaks = _sweep(cold_estimators, grid)
    cold_seconds = time.perf_counter() - started
    counters_after_cold = store.counters() if store else {}

    # --- warm: one shared PipelineCache across every variant -----------
    cache = PipelineCache(artifact_store=store)
    warm_estimators = {
        variant: XMemEstimator(
            iterations=ITERATIONS, curve=False, stage_cache=cache, **knobs
        )
        for variant, knobs in VARIANTS.items()
    }
    started = time.perf_counter()
    warming_peaks = _sweep(warm_estimators, grid)
    warming_seconds = time.perf_counter() - started
    profiles_after_warming = cache.traces.stats()["misses"]

    started = time.perf_counter()
    warm_peaks = _sweep(warm_estimators, grid)
    warm_seconds = time.perf_counter() - started

    num_cells = len(grid) * len(VARIANTS)
    report = {
        "quick": quick,
        "iterations": ITERATIONS,
        "grid": [f"{model}/bs{bs}" for model, bs in grid],
        "variants": sorted(VARIANTS),
        "num_cells": num_cells,
        "cold_seconds": cold_seconds,
        "warming_seconds": warming_seconds,
        "warm_seconds": warm_seconds,
        "cold_cell_ms": cold_seconds / num_cells * 1e3,
        "warm_cell_ms": warm_seconds / num_cells * 1e3,
        "warm_speedup": cold_seconds / warm_seconds,
        "warming_speedup": cold_seconds / warming_seconds,
        "unique_profiles": len(grid),
        "profiles_after_warming": profiles_after_warming,
        "stage_cache": cache.stats(),
        "peaks_byte_identical": cold_peaks == warming_peaks == warm_peaks,
        "peak_bytes": {
            "/".join(map(str, cell)): peak
            for cell, peak in sorted(cold_peaks.items())
        },
    }
    if store is not None:
        delta = {
            name: counters_after_cold.get(name, 0)
            - counters_before.get(name, 0)
            for name in ("build:profile", "hit:profile")
        }
        report["artifact_store"] = {
            "path": artifact_store,
            "cold_build_profile_delta": delta["build:profile"],
            "cold_hit_profile_delta": delta["hit:profile"],
            "counters": store.counters(),
        }
    return report


def _check(report: dict, expect_warm_store: bool = False) -> None:
    assert report["peaks_byte_identical"], (
        "stage-cached peaks diverged from the cold pipeline"
    )
    store_mode = "artifact_store" in report
    if not store_mode:
        # with a store attached the "cold" side is sqlite-accelerated, so
        # the cold/warm ratio measures the L2, not the stage caches — the
        # counter assertions below are the store mode's contract
        assert report["warm_speedup"] >= MIN_WARM_SPEEDUP, (
            f"warm stage-cache sweep only {report['warm_speedup']:.2f}x "
            f"faster than the cold pipeline (need >= {MIN_WARM_SPEEDUP}x)"
        )
    # the shared cache profiles each unique workload exactly once, and the
    # measured warm pass adds no profile at all
    assert report["profiles_after_warming"] == report["unique_profiles"]
    assert (
        report["stage_cache"]["traces"]["misses"]
        == report["unique_profiles"]
    )
    if expect_warm_store:
        stats = report["artifact_store"]
        assert stats["cold_build_profile_delta"] == 0, (
            f"a warmed store still built "
            f"{stats['cold_build_profile_delta']} profiles: "
            f"{stats['counters']}"
        )
        assert (
            stats["cold_hit_profile_delta"] >= report["unique_profiles"]
        ), stats


def _write(report: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_pipeline_stage_caching(capsys):
    report = run_pipeline_bench(quick=True)
    _write(report)
    emit("pipeline_stages", json.dumps(report, indent=2), capsys)
    _check(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument(
        "--artifact-store", metavar="PATH", default=None,
        help="wire a persistent L2 store under both sweeps",
    )
    parser.add_argument(
        "--expect-warm-store", action="store_true",
        help="assert the store (not compute) served the cold sweep — "
        "use on the second run against the same --artifact-store",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH,
        help="report path (point store-mode runs away from the "
        "regression gate's BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    if args.expect_warm_store and not args.artifact_store:
        parser.error("--expect-warm-store requires --artifact-store")

    bench_report = run_pipeline_bench(
        quick=args.quick, artifact_store=args.artifact_store
    )
    _write(bench_report, args.output)
    _check(bench_report, expect_warm_store=args.expect_warm_store)
    emit("pipeline_stages", json.dumps(bench_report, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
