"""Driver comparison: thread pool vs. asyncio event loop, same sans-IO core.

Replays the PR 2 deterministic traffic scenarios (uniform, zipf hot-key,
bursty, duplicate storm, adversarial mix) through a 4-shard gateway under
**both execution drivers** — :class:`~repro.service.gateway.ServiceGateway`
(threads + locks) and :class:`~repro.service.aio.AsyncServiceGateway`
(event loop + executor) — which share the identical
:class:`~repro.service.core.GatewayCore` policy state machine.  The
estimator is :class:`~repro.service.traffic.SyntheticEstimator`, so the
numbers measure the serving substrate: locks, futures, thread handoffs
vs. inline event-loop calls.

Acceptance (asserted):

* **byte identity** — results served through *either* driver equal
  direct estimator calls exactly (real ``XMemEstimator``, peak bytes +
  role breakdown), and the two drivers agree with each other;
* **accounting** — both drivers account for every generated request
  (answered + shed + rejected + errors) on every scenario, and reject
  the same adversarial requests (validation is deterministic);
* **throughput** — on the duplicate-storm scenario (best of
  ``ROUNDS`` replays each), the asyncio driver sustains at least the
  thread driver's aggregate throughput: a cache hit or piggybacked
  duplicate never leaves the event loop, while the thread driver pays
  locks and future plumbing per request.

``python bench_async_gateway.py [--smoke]`` runs standalone (``--smoke``
shrinks the replay for CI); under pytest the smoke size is used.
"""

from __future__ import annotations

import asyncio
import json
import sys

from repro.core.estimator import XMemEstimator
from repro.service import (
    SCENARIO_NAMES,
    AsyncServiceGateway,
    ServiceGateway,
    SyntheticEstimator,
    generate_traffic,
    make_policy,
    replay,
    replay_async,
)
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

NUM_SHARDS = 4
#: simulated per-estimate cost: non-zero so misses dominate cold waves,
#: small enough that duplicate-heavy waves measure the serving substrate
WORK_SECONDS = 0.001
#: replays per driver for the throughput comparison; best-of smooths
#: scheduler noise without hiding a real regression
ROUNDS = 3


def _payload(report) -> dict:
    data = report.as_dict()
    aggregate = data.pop("stats")["aggregate"]
    data["cache_hit_rate"] = aggregate["cache_hit_rate"]
    data["latency_p95_ms"] = (
        aggregate["latency_seconds"]["p95"] * 1e3
        if aggregate["latency_seconds"]["p95"] is not None
        else None
    )
    return data


def run_scenario_threads(
    scenario: str,
    num_requests: int,
    seed: int = 0,
    work_seconds: float = WORK_SECONDS,
):
    trace = generate_traffic(scenario, num_requests, seed=seed)
    with ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=lambda: SyntheticEstimator(
            work_seconds=work_seconds
        ),
        policy=make_policy("hash", NUM_SHARDS, seed=seed),
    ) as gateway:
        return replay(trace, gateway)


def run_scenario_asyncio(
    scenario: str,
    num_requests: int,
    seed: int = 0,
    work_seconds: float = WORK_SECONDS,
):
    trace = generate_traffic(scenario, num_requests, seed=seed)

    async def _go():
        gateway = AsyncServiceGateway(
            num_shards=NUM_SHARDS,
            estimator_factory=lambda: SyntheticEstimator(
                work_seconds=work_seconds
            ),
            policy=make_policy("hash", NUM_SHARDS, seed=seed),
        )
        try:
            return await replay_async(trace, gateway)
        finally:
            await gateway.aclose()

    return asyncio.run(_go())


def check_byte_identity() -> dict:
    """Both drivers must equal direct estimator calls exactly."""
    workloads = [
        WorkloadConfig("MobileNetV3Small", "sgd", 8),
        WorkloadConfig("MobileNetV3Small", "adam", 16),
    ]
    with ServiceGateway(
        num_shards=2,
        estimator_factory=lambda: XMemEstimator(iterations=1),
    ) as gateway:
        threaded = [gateway.estimate(w, RTX_3060) for w in workloads]

    async def _serve_async():
        gateway = AsyncServiceGateway(
            num_shards=2,
            estimator_factory=lambda: XMemEstimator(iterations=1),
        )
        try:
            return [await gateway.estimate(w, RTX_3060) for w in workloads]
        finally:
            await gateway.aclose()

    evented = asyncio.run(_serve_async())
    direct = [
        XMemEstimator(iterations=1).estimate(w, RTX_3060) for w in workloads
    ]
    for via_threads, via_loop, reference in zip(threaded, evented, direct):
        assert via_threads.peak_bytes == reference.peak_bytes
        assert via_loop.peak_bytes == reference.peak_bytes
        assert via_threads.detail == reference.detail
        assert via_loop.detail == reference.detail
        assert via_loop.predicts_oom() == reference.predicts_oom()
    return {
        "workloads": [w.label() for w in workloads],
        "peak_bytes": [r.peak_bytes for r in direct],
        "byte_identical": True,
    }


def run_driver_bench(num_requests: int = 200) -> dict:
    """All scenarios under both drivers + the storm throughput race."""
    scenarios = {}
    for name in SCENARIO_NAMES:
        scenarios[name] = {
            "threads": _payload(run_scenario_threads(name, num_requests)),
            "asyncio": _payload(run_scenario_asyncio(name, num_requests)),
        }

    # --- duplicate-storm throughput: the dedup/cache-hit fast path ----
    # zero simulated work: a storm of duplicates is answered from the
    # single-flight table and the cache, so the race measures pure
    # serving substrate (locks + future plumbing vs. inline loop calls),
    # not the estimator both drivers share
    threads_best = max(
        run_scenario_threads(
            "duplicate-storm", num_requests, work_seconds=0.0
        ).throughput_rps
        for _ in range(ROUNDS)
    )
    asyncio_best = max(
        run_scenario_asyncio(
            "duplicate-storm", num_requests, work_seconds=0.0
        ).throughput_rps
        for _ in range(ROUNDS)
    )
    return {
        "num_shards": NUM_SHARDS,
        "num_requests": num_requests,
        "rounds": ROUNDS,
        "scenarios": scenarios,
        "duplicate_storm_throughput": {
            "threads_rps": threads_best,
            "asyncio_rps": asyncio_best,
            "speedup": (
                asyncio_best / threads_best if threads_best else None
            ),
        },
        "byte_identity": check_byte_identity(),
    }


def _check(report: dict) -> None:
    assert report["byte_identity"]["byte_identical"]
    for name, drivers in report["scenarios"].items():
        for driver, scenario in drivers.items():
            total = (
                scenario["answered"]
                + scenario["shed"]
                + scenario["rejected"]
                + scenario["errors"]
            )
            assert total == scenario["num_requests"], (name, driver, scenario)
        # validation is deterministic: the drivers reject identically
        assert (
            drivers["threads"]["rejected"] == drivers["asyncio"]["rejected"]
        ), name
    assert report["scenarios"]["adversarial"]["asyncio"]["rejected"] > 0
    for name in ("uniform", "zipf", "bursty", "duplicate-storm"):
        for driver in ("threads", "asyncio"):
            assert report["scenarios"][name][driver]["errors"] == 0, name
    race = report["duplicate_storm_throughput"]
    assert race["asyncio_rps"] >= race["threads_rps"], (
        f"asyncio driver {race['asyncio_rps']:,.0f} req/s below thread "
        f"driver {race['threads_rps']:,.0f} req/s on duplicate-storm"
    )


def test_async_gateway_drivers(capsys):
    report = run_driver_bench(num_requests=200)
    emit("async_gateway_drivers", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    bench_report = run_driver_bench(num_requests=200 if smoke else 600)
    _check(bench_report)
    emit("async_gateway_drivers", json.dumps(bench_report, indent=2))
