"""Table 4: average estimation runtime per estimator.

Absolute seconds differ from the paper (its substrate parsed multi-
million-row Kineto traces; ours replays a virtual-time simulation), but
the orderings that matter are asserted: SchedTune's pre-trained inference
is fastest, and the trace-analysing xMem costs more than fast inference
while remaining practical for pre-submission checks.
"""

from __future__ import annotations

from repro.core.estimator import XMemEstimator
from repro.eval.reporting import runtime_table
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit


def test_table4_runtime(monte_carlo_result, benchmark, capsys):
    runtimes = runtime_table(monte_carlo_result)
    lines = [f"{'estimator':<14}{'avg runtime (s)':>16}"]
    for name, seconds in sorted(runtimes.items(), key=lambda kv: kv[1]):
        lines.append(f"{name:<14}{seconds:>16.3f}")
    lines.append(
        "(paper: DNNMem 33s, SchedTune 2s, LLMem 17s, xMem 26s on "
        "million-row Kineto traces)"
    )
    emit("table4_runtime", "\n".join(lines), capsys)

    # shape: a pre-trained regressor answers orders of magnitude faster
    # than dynamic trace analysis
    assert runtimes["SchedTune"] < runtimes["xMem"]
    assert runtimes["SchedTune"] < runtimes["DNNMem"]
    # and every estimator stays practical for pre-submission checks
    assert all(seconds < 60 for seconds in runtimes.values())

    workload = WorkloadConfig("distilgpt2", "adam", 4)
    benchmark(lambda: XMemEstimator().estimate(workload, RTX_3060))
