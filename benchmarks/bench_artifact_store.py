"""Persistent artifact store: the cold path dies across processes.

The stage caches (:mod:`bench_pipeline_stages`) only help within one
process; every fresh CLI run, CI lane, and pool worker used to pay the
full profile -> analyze -> orchestrate chain again.  This benchmark
measures what the **content-addressed sqlite store**
(:mod:`repro.core.artifacts`) recovers across process boundaries:

* **storeless** — a child process runs a cold sweep with stage caching
  off: the baseline every fresh process used to pay;
* **warming** — a second child runs the same sweep against an *empty*
  store: full compute plus the publish cost;
* **stored** — a third child (fresh interpreter, cold L1) runs the sweep
  against the now-warm store: upstream stages are sqlite reads.

Acceptance (asserted):

* the stored child's sweep is >= 3x faster than the storeless child's;
* every child reports byte-identical peaks, and the delta-simulation
  paths (full replay, cached delta replay, closed-form peak profile)
  agree exactly;
* a 4-worker :class:`~repro.service.procpool.ProcEstimationService`
  sharing one store builds each unique workload's profile **exactly
  once** across the whole pool (the store's persistent ``build:profile``
  counter, not a wall-clock claim — it holds on any host).

Writes ``BENCH_artifacts.json`` at the repository root (CI gates it
against ``benchmarks/baselines/BENCH_artifacts.baseline.json``).
``python bench_artifact_store.py [--quick]`` runs standalone; under
pytest the quick size is used.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from functools import partial
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"
RESULT_PATH = REPO_ROOT / "BENCH_artifacts.json"

ITERATIONS = 2
MIN_STORE_SPEEDUP = 3.0
POOL_WORKERS = 4


def _grid(quick: bool) -> list[tuple[str, int]]:
    models = ["MobileNetV3Small"] if quick else ["MobileNetV3Small", "MnasNet"]
    batch_sizes = [4, 8] if quick else [4, 8, 16]
    return [(model, bs) for model in models for bs in batch_sizes]


# ----------------------------------------------------------------------
# child side: one cold sweep per interpreter
# ----------------------------------------------------------------------


def _child_sweep(quick: bool, store_path: str | None) -> dict:
    """Cold sweep in *this* process; returns seconds + peaks.

    With a store, the L1 caches are capacity-zero so every cell goes to
    sqlite — the shape of a fresh process with nothing but the store.
    """
    from repro.core.estimator import XMemEstimator
    from repro.core.pipeline import PipelineCache
    from repro.workload import RTX_3060, WorkloadConfig

    grid = _grid(quick)
    if store_path:
        cache = PipelineCache(
            max_traces=0,
            max_analyses=0,
            max_sequences=0,
            max_simulations=0,
            artifact_store=store_path,
        )
        estimator = XMemEstimator(
            iterations=ITERATIONS, curve=False, stage_cache=cache
        )
    else:
        estimator = XMemEstimator(
            iterations=ITERATIONS, curve=False, stage_cache=False
        )
    peaks = {}
    started = time.perf_counter()
    for model, batch_size in grid:
        result = estimator.estimate(
            WorkloadConfig(model, "adam", batch_size), RTX_3060
        )
        peaks[f"{model}/bs{batch_size}"] = result.peak_bytes
    seconds = time.perf_counter() - started
    sources = (
        dict(result.stage_sources) if store_path else {}
    )  # last cell's provenance: "store" everywhere once warm
    return {"seconds": seconds, "peaks": peaks, "last_sources": sources}


def _run_child(quick: bool, store_path: str | None) -> dict:
    """The same sweep, but in a genuinely fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    spec = json.dumps({"quick": quick, "store": store_path})
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", spec],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"child sweep failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


# ----------------------------------------------------------------------
# delta-simulation identity (in-process)
# ----------------------------------------------------------------------


def check_delta_identity() -> dict:
    """Full replay == cached delta replay == closed-form peak profile."""
    from dataclasses import replace

    from repro.allocator.constants import DEFAULT_CONFIG
    from repro.core.pipeline import EstimationPipeline, PipelineCache
    from repro.core.simulator import MemorySimulator
    from repro.workload import WorkloadConfig

    pipeline = EstimationPipeline(iterations=ITERATIONS, cache=PipelineCache())
    trace = pipeline.profile(WorkloadConfig("MobileNetV3Small", "adam", 8))
    sequence = pipeline.orchestrate(pipeline.analyze(trace))

    variants = {
        "default": (DEFAULT_CONFIG, True),
        "no_split": (replace(DEFAULT_CONFIG, allow_split=False), True),
        "single_level": (DEFAULT_CONFIG, False),
    }
    peaks = {}
    for name, (config, two_level) in variants.items():
        full = MemorySimulator(
            allocator_config=config, two_level=two_level
        ).replay(sequence, record_timeline=True)
        closed = MemorySimulator(
            allocator_config=config, two_level=two_level
        ).replay_peak_profile(sequence)
        first = pipeline.simulate(
            sequence, config, two_level, capacity_bytes=None, curve=False
        )
        again = pipeline.simulate(  # second pass: served from the cache
            sequence, config, two_level, capacity_bytes=None, curve=False
        )
        rows = (full, closed.result, first, again)
        identical = (
            len({r.peak_reserved_bytes for r in rows}) == 1
            and len({r.peak_allocated_bytes for r in rows}) == 1
            and len({r.num_events for r in rows}) == 1
            and again is first
        )
        peaks[name] = {
            "peak_reserved_bytes": full.peak_reserved_bytes,
            "peak_allocated_bytes": full.peak_allocated_bytes,
            "num_events": full.num_events,
            "identical": identical,
        }
    return {
        "variants": peaks,
        "identical": all(row["identical"] for row in peaks.values()),
    }


# ----------------------------------------------------------------------
# procpool: one warm store for the whole pool
# ----------------------------------------------------------------------


def check_procpool_exactly_once(quick: bool, store_path: str) -> dict:
    """4 workers x 2 devices per workload: one profile build per workload.

    The persistent ``build:profile`` counter is the proof — claims make
    the first worker to need a workload build it and every other worker
    (and the second device's request) inherit the artifact.
    """
    from repro.core.artifacts import ArtifactStore
    from repro.core.estimator import XMemEstimator
    from repro.service import ProcEstimationService
    from repro.workload import RTX_3060, RTX_4060, WorkloadConfig

    grid = _grid(quick)
    factory = partial(XMemEstimator, iterations=ITERATIONS, curve=False)
    with ProcEstimationService(
        estimator_factory=factory,
        max_workers=POOL_WORKERS,
        artifact_store=store_path,
    ) as service:
        futures = [
            service.submit(WorkloadConfig(model, "adam", bs), device)
            for model, bs in grid
            for device in (RTX_3060, RTX_4060)
        ]
        peaks = [future.result().peak_bytes for future in futures]
    counters = ArtifactStore(store_path).counters()
    return {
        "workers": POOL_WORKERS,
        "requests": len(peaks),
        "unique_workloads": len(grid),
        "profile_builds": counters.get("build:profile", 0),
        "store_counters": {
            name: count
            for name, count in sorted(counters.items())
            if name.startswith(("build:", "hit:"))
        },
    }


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------


def run_artifact_bench(quick: bool = True) -> dict:
    grid = _grid(quick)
    with tempfile.TemporaryDirectory(prefix="xmem-artifacts-") as tmp:
        sweep_store = os.path.join(tmp, "sweep.sqlite")
        pool_store = os.path.join(tmp, "pool.sqlite")

        storeless = _run_child(quick, None)
        warming = _run_child(quick, sweep_store)
        stored = _run_child(quick, sweep_store)  # fresh process, warm store

        num_cells = len(grid)
        report = {
            "quick": quick,
            "iterations": ITERATIONS,
            "grid": [f"{model}/bs{bs}" for model, bs in grid],
            "num_cells": num_cells,
            "storeless_seconds": storeless["seconds"],
            "warming_seconds": warming["seconds"],
            "stored_seconds": stored["seconds"],
            "store_cell_ms": stored["seconds"] / num_cells * 1e3,
            "store_speedup": storeless["seconds"] / stored["seconds"],
            "warming_overhead": warming["seconds"] / storeless["seconds"],
            "stored_last_sources": stored["last_sources"],
            "peaks_byte_identical": (
                storeless["peaks"] == warming["peaks"] == stored["peaks"]
            ),
            "peak_bytes": storeless["peaks"],
            "delta_identity": check_delta_identity(),
            "procpool": check_procpool_exactly_once(quick, pool_store),
        }
    return report


def _check(report: dict) -> None:
    assert report["peaks_byte_identical"], (
        "store-served peaks diverged from the storeless pipeline"
    )
    assert report["delta_identity"]["identical"], (
        "delta/closed-form simulation diverged from the full replay"
    )
    assert report["store_speedup"] >= MIN_STORE_SPEEDUP, (
        f"warm-store cold-process sweep only {report['store_speedup']:.2f}x "
        f"faster than the storeless cold sweep (need >= {MIN_STORE_SPEEDUP}x)"
    )
    # the stored child really was served by the store, not a warm L1
    upstream = {"profile", "analyze", "orchestrate"}
    sources = report["stored_last_sources"]
    assert all(sources.get(stage) == "store" for stage in upstream), sources
    pool = report["procpool"]
    assert pool["profile_builds"] == pool["unique_workloads"], pool


def _write(report: dict) -> None:
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")


def test_artifact_store_bench(capsys):
    from _common import emit

    report = run_artifact_bench(quick=True)
    _write(report)
    emit("artifact_store", json.dumps(report, indent=2), capsys)
    _check(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--child", metavar="SPEC", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        spec = json.loads(args.child)
        payload = _child_sweep(spec["quick"], spec["store"])
        print(json.dumps(payload))
        return 0

    from _common import emit

    report = run_artifact_bench(quick=args.quick)
    _write(report)
    _check(report)
    emit("artifact_store", json.dumps(report, indent=2))
    print(f"wrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
