"""Gateway scaling: routed shards under deterministic traffic scenarios.

Replays every named traffic scenario (uniform, zipf hot-key, bursty,
duplicate storm, adversarial mix) against a 4-shard
:class:`~repro.service.gateway.ServiceGateway` and reports per-scenario
throughput, aggregate cache hit rate, and shed/reject rates.  The
estimator is :class:`~repro.service.traffic.SyntheticEstimator` with a
small simulated cost, so the numbers measure the serving layer (routing,
per-shard caches, queues) rather than CPU profiling time.

Acceptance (asserted):

* under the zipf hot-key scenario, 4-shard **consistent-hash** routing
  achieves a *strictly higher* aggregate cache hit rate than random
  routing — cache locality is the reason the gateway routes on the
  request fingerprint;
* results served through the gateway are **byte-identical** to direct
  estimator calls (real ``XMemEstimator``, peak bytes + role breakdown).

``python bench_gateway.py [--smoke]`` runs standalone (``--smoke``
shrinks the replay for CI); under pytest the smoke size is used.
"""

from __future__ import annotations

import json
import sys

from repro.core.estimator import XMemEstimator
from repro.service import (
    SCENARIO_NAMES,
    ServiceGateway,
    SyntheticEstimator,
    generate_traffic,
    make_policy,
    replay,
)
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

NUM_SHARDS = 4
#: simulated per-estimate cost; large vs. a cache lookup, small vs. CI time
WORK_SECONDS = 0.002


def run_scenario(
    scenario: str,
    num_requests: int,
    policy_name: str = "hash",
    seed: int = 0,
    max_queue_depth: int = 64,
) -> dict:
    """Replay one scenario; returns the replay report as a dict."""
    trace = generate_traffic(scenario, num_requests, seed=seed)
    policy = make_policy(policy_name, NUM_SHARDS, seed=seed)
    with ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=lambda: SyntheticEstimator(
            work_seconds=WORK_SECONDS
        ),
        policy=policy,
        max_queue_depth=max_queue_depth,
    ) as gateway:
        report = replay(trace, gateway)
    payload = report.as_dict()
    aggregate = payload.pop("stats")["aggregate"]
    payload["cache_hit_rate"] = aggregate["cache_hit_rate"]
    payload["latency_p95_ms"] = (
        aggregate["latency_seconds"]["p95"] * 1e3
        if aggregate["latency_seconds"]["p95"] is not None
        else None
    )
    payload["policy"] = policy_name
    return payload


def check_byte_identity() -> dict:
    """Gateway answers must equal direct estimator calls exactly."""
    workloads = [
        WorkloadConfig("MobileNetV3Small", "sgd", 8),
        WorkloadConfig("MobileNetV3Small", "adam", 16),
    ]
    with ServiceGateway(
        num_shards=2,
        estimator_factory=lambda: XMemEstimator(iterations=1),
    ) as gateway:
        served = [gateway.estimate(w, RTX_3060) for w in workloads]
    direct = [
        XMemEstimator(iterations=1).estimate(w, RTX_3060) for w in workloads
    ]
    for via_gateway, reference in zip(served, direct):
        assert via_gateway.peak_bytes == reference.peak_bytes
        assert via_gateway.detail == reference.detail
        assert via_gateway.predicts_oom() == reference.predicts_oom()
    return {
        "workloads": [w.label() for w in workloads],
        "peak_bytes": [r.peak_bytes for r in direct],
        "byte_identical": True,
    }


def run_gateway_bench(num_requests: int = 200) -> dict:
    """All scenarios + the routing comparison + the identity check."""
    scenarios = {
        name: run_scenario(name, num_requests) for name in SCENARIO_NAMES
    }

    # --- routing comparison: locality is the point of hash routing ----
    hashed = run_scenario("zipf", num_requests, policy_name="hash")
    randomized = run_scenario("zipf", num_requests, policy_name="random")
    assert hashed["cache_hit_rate"] > randomized["cache_hit_rate"], (
        f"consistent-hash hit rate {hashed['cache_hit_rate']:.3f} not "
        f"above random routing's {randomized['cache_hit_rate']:.3f}"
    )

    return {
        "num_shards": NUM_SHARDS,
        "num_requests": num_requests,
        "scenarios": scenarios,
        "routing_comparison": {
            "scenario": "zipf",
            "hash_hit_rate": hashed["cache_hit_rate"],
            "random_hit_rate": randomized["cache_hit_rate"],
            "locality_gain": (
                hashed["cache_hit_rate"] - randomized["cache_hit_rate"]
            ),
        },
        "byte_identity": check_byte_identity(),
    }


def _check(report: dict) -> None:
    comparison = report["routing_comparison"]
    assert comparison["hash_hit_rate"] > comparison["random_hit_rate"]
    assert report["byte_identity"]["byte_identical"]
    for name, scenario in report["scenarios"].items():
        # every generated request is accounted for, none silently dropped
        total = (
            scenario["answered"]
            + scenario["shed"]
            + scenario["rejected"]
            + scenario["errors"]
        )
        assert total == scenario["num_requests"], (name, scenario)
    # the adversarial third of invalid requests must be rejected, cheaply
    assert report["scenarios"]["adversarial"]["rejected"] > 0
    # well-formed scenarios are fully answered at the default queue depth
    for name in ("uniform", "zipf", "bursty", "duplicate-storm"):
        assert report["scenarios"][name]["errors"] == 0
        assert report["scenarios"][name]["rejected"] == 0


def test_gateway_scenarios(capsys):
    report = run_gateway_bench(num_requests=200)
    emit("gateway_scenarios", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    bench_report = run_gateway_bench(num_requests=200 if smoke else 800)
    _check(bench_report)
    emit("gateway_scenarios", json.dumps(bench_report, indent=2))
