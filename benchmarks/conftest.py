"""Benchmark fixtures: experiment results are computed once per session."""

from __future__ import annotations

import pytest

from repro.eval.anova import run_anova_experiment
from repro.eval.montecarlo import run_monte_carlo_experiment

from _common import anova_scale, monte_carlo_samples


@pytest.fixture(scope="session")
def anova_result():
    """The systematic-grid experiment shared by Fig. 7a/7b and Fig. 8a."""
    return run_anova_experiment(scale=anova_scale())


@pytest.fixture(scope="session")
def monte_carlo_result():
    """The Monte Carlo experiment shared by Fig. 7c/7d, Fig. 8b, Tables 3-4."""
    return run_monte_carlo_experiment(num_samples=monte_carlo_samples(), seed=0)


ESTIMATOR_NAMES = ("xMem", "DNNMem", "SchedTune", "LLMem")
