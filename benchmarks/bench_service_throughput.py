"""Service throughput: cold vs. warm fingerprint cache.

The estimation service's pitch is that an a-priori memory oracle can be
queried at scheduler rates: the first request for a workload pays the
full profile-analyze-simulate pipeline, every repeat is a fingerprint
lookup.  This benchmark replays a repeated-workload request trace (the
shape cluster admission traffic has: many submissions, few distinct
configurations) against one service, cold then warm, and reports
requests/sec, cache hit rate, and latency percentiles as JSON.

Acceptance: warm-cache throughput >= 10x cold-cache throughput.
"""

from __future__ import annotations

import json
import time

from repro.core.estimator import XMemEstimator
from repro.service import EstimationService, estimate_many
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

#: distinct workloads in the trace (cold phase estimates each once)
UNIQUE_WORKLOADS = [
    WorkloadConfig("MobileNetV3Small", "sgd", 16),
    WorkloadConfig("MobileNetV3Small", "adam", 32),
    WorkloadConfig("MobileNetV2", "sgd", 16),
    WorkloadConfig("MnasNet", "sgd", 8),
]
#: repeats of the whole unique set in the warm phase
WARM_REPEATS = 25


def run_throughput_bench() -> dict:
    device = RTX_3060
    with EstimationService(
        estimator=XMemEstimator(iterations=2), max_workers=4
    ) as service:
        # --- cold: every request misses and runs the full pipeline ----
        cold_requests = [(w, device) for w in UNIQUE_WORKLOADS]
        started = time.perf_counter()
        cold_results = estimate_many(
            service, cold_requests, share_profiles=False
        )
        cold_seconds = time.perf_counter() - started

        # --- warm: the same trace repeated; all fingerprint hits ------
        warm_requests = cold_requests * WARM_REPEATS
        started = time.perf_counter()
        warm_results = estimate_many(
            service, warm_requests, share_profiles=False
        )
        warm_seconds = time.perf_counter() - started
        stats = service.stats()

    # warm answers are the cached cold objects — byte-identical replays
    assert all(
        warm.peak_bytes == cold.peak_bytes
        for cold, warm in zip(cold_results, warm_results)
    )
    cold_rps = len(cold_requests) / cold_seconds
    warm_rps = len(warm_requests) / warm_seconds
    return {
        "unique_workloads": len(UNIQUE_WORKLOADS),
        "cold_requests": len(cold_requests),
        "warm_requests": len(warm_requests),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_rps": cold_rps,
        "warm_rps": warm_rps,
        "warm_speedup": warm_rps / cold_rps,
        "cache_hit_rate": stats["service"]["cache_hit_rate"],
        "latency_seconds": stats["service"]["latency_seconds"],
        "cache": stats["cache"],
    }


def test_service_throughput(capsys):
    report = run_throughput_bench()
    emit("service_throughput", json.dumps(report, indent=2), capsys)
    # the serving layer's raison d'etre: repeats are catalog lookups
    assert report["warm_speedup"] >= 10, (
        f"warm cache only {report['warm_speedup']:.1f}x faster than cold"
    )
    assert report["cache_hit_rate"] > 0.9
    assert report["latency_seconds"]["p50"] is not None


if __name__ == "__main__":
    print(json.dumps(run_throughput_bench(), indent=2))
