"""Chaos benchmark: resilience under a seeded shard blackout.

Replays the zipf hot-key trace twice against a 4-shard thread-driver
gateway — once fault-free, once with a :class:`repro.service.faults.FaultPlan`
that blacks out the busiest shard for the middle half of the trace — and
holds the resilience plane (retry/backoff, circuit breaking, re-routing;
see ``docs/resilience.md``) to four acceptance properties:

* **exactly-once settle** — every submitted request resolves exactly
  once, fault plan or not; nothing is lost or double-answered;
* **byte identity** — every answer served during chaos equals the
  fault-free answer for the same request, byte for byte (retries and
  re-routes must never change *what* is served, only *where from*);
* **goodput floor** — during the blackout window, at least 50% of the
  fault-free goodput survives (re-routing around the dead shard, not
  erroring through it);
* **determinism** — two runs of the same seeded plan produce the
  identical resilience decision sequence
  (:meth:`~repro.service.telemetry.AuditLedger.resilience_sequence`).

``python bench_chaos.py [--quick]`` runs standalone (``--quick`` shrinks
the trace for CI); under pytest the quick size is used.
"""

from __future__ import annotations

import json
import sys
from collections import Counter

from repro.errors import RateLimitExceededError, RequestRejectedError
from repro.service import (
    FaultPlan,
    FaultSpec,
    ServiceGateway,
    SyntheticEstimator,
    Telemetry,
    default_resilience,
    generate_traffic,
)

from _common import emit

NUM_SHARDS = 4
#: simulated per-estimate cost; nonzero so retries/hedges have a window
WORK_SECONDS = 0.001
GOODPUT_FLOOR = 0.5


def _make_gateway(fault_plan=None, telemetry=None):
    return ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=lambda: SyntheticEstimator(
            work_seconds=WORK_SECONDS
        ),
        max_queue_depth=256,
        telemetry=telemetry,
        resilience=default_resilience(),
        fault_plan=fault_plan,
    )


def plan_blackout(trace, seed: int) -> FaultPlan:
    """Black out the shard that takes the most traffic mid-trace.

    The window covers the middle half of the submission-index stream;
    the victim is whichever shard hash routing sends the most in-window
    requests to (probed on a throwaway gateway — routing is a pure
    function of the fingerprint and shard count), so the blackout is
    guaranteed to collide with real traffic.
    """
    lo, hi = len(trace) // 4, len(trace) // 4 + len(trace) // 2
    ordered = [request for wave in trace.waves() for request in wave]
    with _make_gateway() as probe:
        routed = [
            probe.shard_for(req.workload, req.device) for req in ordered
        ]
    victim = Counter(routed[lo:hi]).most_common(1)[0][0]
    return FaultPlan(
        specs=(
            FaultSpec(
                kind="shard_blackout", start=lo, stop=hi, shard=victim
            ),
        ),
        seed=seed,
    )


def run_once(trace, fault_plan=None) -> dict:
    """Replay wave by wave, keeping the outcome of every trace index.

    Mirrors :func:`repro.service.traffic.replay` (submit a wave, join
    it, next wave) but records per-index outcomes so the identity and
    goodput checks can compare runs request by request.
    """
    telemetry = Telemetry()
    outcomes: dict[int, tuple] = {}
    with _make_gateway(fault_plan, telemetry) as gateway:
        index = 0
        for wave in trace.waves():
            pending = []
            for request in wave:
                try:
                    future = gateway.submit(request.workload, request.device)
                except (RateLimitExceededError, RequestRejectedError) as err:
                    outcomes[index] = ("shed", type(err).__name__)
                else:
                    pending.append((index, future))
                index += 1
            for request_index, future in pending:
                try:
                    result = future.result(timeout=30.0)
                except (RateLimitExceededError, RequestRejectedError) as err:
                    outcomes[request_index] = ("shed", type(err).__name__)
                except Exception as err:  # noqa: BLE001 - outcome capture
                    outcomes[request_index] = ("error", type(err).__name__)
                else:
                    outcomes[request_index] = (
                        "answered",
                        (result.peak_bytes, json.dumps(result.detail)),
                    )
        stats = gateway.stats()
    return {
        "outcomes": outcomes,
        "stats": stats,
        "sequence": telemetry.ledger.resilience_sequence(),
    }


def _answered_in(outcomes, lo: int, hi: int) -> int:
    return sum(
        1
        for index, (status, _) in outcomes.items()
        if lo <= index < hi and status == "answered"
    )


def run_chaos_bench(num_requests: int = 240, seed: int = 0) -> dict:
    trace = generate_traffic("zipf", num_requests, seed=seed)
    plan = plan_blackout(trace, seed)
    blackout = plan.specs[0]

    baseline = run_once(trace)
    chaotic = run_once(trace, plan)
    repeat = run_once(trace, plan)

    # --- exactly-once settle: nothing lost, nothing double-counted ----
    for name, run in (("baseline", baseline), ("chaos", chaotic)):
        assert len(run["outcomes"]) == len(trace), (
            f"{name}: {len(run['outcomes'])} outcomes for "
            f"{len(trace)} submissions — a future was lost"
        )

    # --- byte identity: chaos never changes what is served ------------
    mismatched = [
        index
        for index, (status, payload) in chaotic["outcomes"].items()
        if status == "answered"
        and baseline["outcomes"][index] != ("answered", payload)
    ]
    assert not mismatched, (
        f"answers diverged from fault-free run at indices {mismatched[:5]}"
    )

    # --- goodput floor inside the blackout window ---------------------
    base_goodput = _answered_in(
        baseline["outcomes"], blackout.start, blackout.stop
    )
    chaos_goodput = _answered_in(
        chaotic["outcomes"], blackout.start, blackout.stop
    )
    assert base_goodput > 0, "blackout window saw no baseline traffic"
    ratio = chaos_goodput / base_goodput
    assert ratio >= GOODPUT_FLOOR, (
        f"goodput during blackout {chaos_goodput}/{base_goodput} "
        f"({ratio:.2f}) fell below the {GOODPUT_FLOOR:.0%} floor"
    )

    # --- determinism: same seed, same decision sequence ---------------
    assert chaotic["sequence"], "seeded blackout produced no decisions"
    assert chaotic["sequence"] == repeat["sequence"], (
        "resilience decision sequence diverged across same-seed runs"
    )

    faults = chaotic["stats"]["gateway"]["faults"]
    resilience = chaotic["stats"]["gateway"]["resilience"]
    return {
        "num_requests": num_requests,
        "num_shards": NUM_SHARDS,
        "blackout": blackout.as_dict(),
        "baseline_answered": _answered_in(
            baseline["outcomes"], 0, len(trace)
        ),
        "chaos_answered": _answered_in(chaotic["outcomes"], 0, len(trace)),
        "window_goodput": {
            "baseline": base_goodput,
            "chaos": chaos_goodput,
            "ratio": ratio,
        },
        "faults_injected": faults["injected"],
        "retries": resilience["retries"],
        "reroutes": resilience["reroutes"],
        "breaker_opens": resilience["breaker_opens"],
        "decision_events": len(chaotic["sequence"]),
        "deterministic": True,
    }


def _check(report: dict) -> None:
    assert report["deterministic"]
    assert report["faults_injected"].get("shard_blackout", 0) > 0
    assert report["window_goodput"]["ratio"] >= GOODPUT_FLOOR


def test_chaos_blackout(capsys):
    report = run_chaos_bench(num_requests=96)
    emit("chaos_blackout", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    bench_report = run_chaos_bench(num_requests=96 if quick else 240)
    _check(bench_report)
    emit("chaos_blackout", json.dumps(bench_report, indent=2))
