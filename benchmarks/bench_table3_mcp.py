"""Table 3: average Memory Conservation Potential (GB) by architecture.

Positive values are memory saved per run; OOM-causing estimates are
penalized with the device's whole budget (Eq. 7).  Monte Carlo data only,
as in the paper.
"""

from __future__ import annotations

from repro.eval.anova import family_of
from repro.eval.reporting import format_mcp_table, mcp_table

from _common import emit
from conftest import ESTIMATOR_NAMES


def test_table3_mcp(monte_carlo_result, benchmark, capsys):
    table = benchmark(
        lambda: format_mcp_table(
            monte_carlo_result, family_of, ESTIMATOR_NAMES
        )
    )
    emit("table3_mcp", table, capsys)

    rows = dict(mcp_table(monte_carlo_result, family_of, ESTIMATOR_NAMES))
    overall = rows["overall"]
    assert overall["xMem"] is not None
    # paper's headline: xMem conserves the most memory, by a wide margin
    for name in ("DNNMem", "SchedTune", "LLMem"):
        value = overall[name]
        if value is not None:
            assert overall["xMem"] > value
    # paper Table 3: xMem's MCP is strongly positive for both families
    assert rows["cnn"]["xMem"] > 0
    assert rows["transformer"]["xMem"] > 0
    # and SchedTune's transformer MCP is negative (cold-start penalty)
    schedtune_tf = rows["transformer"]["SchedTune"]
    if schedtune_tf is not None:
        assert schedtune_tf < rows["transformer"]["xMem"]
