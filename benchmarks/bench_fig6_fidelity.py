"""Figure 6: simulated vs real segment usage over one training run.

The paper validates its allocator simulator by overlaying the xMem-
simulated segment curve on the PyTorch-snapshot-measured curve for three
models.  Here the "real" curve comes from the simulated-GPU execution and
the "simulated" curve from the xMem replay of the CPU trace; the
comparison metrics are the peak gap and the mean absolute curve gap.
"""

from __future__ import annotations

from repro.core.estimator import XMemEstimator
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.units import GB
from repro.workload import RTX_3060, WorkloadConfig

from _common import bench_scale, emit

MODELS = {
    "smoke": [("distilgpt2", 8)],
    "small": [("distilgpt2", 8), ("gpt-neo-125M", 8)],
    "full": [("distilgpt2", 16), ("gpt-neo-125M", 16), ("ConvNeXtBase", 200)],
}


def _curve_gap(real, simulated, samples: int = 200) -> float:
    """Mean absolute gap between two reserved-bytes curves, resampled."""
    real_pts = real.downsample(samples).points
    sim_pts = simulated.downsample(samples).points

    def value_at(points, fraction):
        if not points:
            return 0
        index = min(int(fraction * (len(points) - 1)), len(points) - 1)
        return points[index].reserved_bytes

    gaps = []
    for step in range(samples):
        fraction = step / (samples - 1)
        gaps.append(abs(value_at(real_pts, fraction) - value_at(sim_pts, fraction)))
    return sum(gaps) / len(gaps)


def test_fig6_simulator_fidelity(benchmark, capsys):
    rows = [
        f"{'model':<16}{'real peak':>11}{'sim peak':>11}{'peak gap':>10}"
        f"{'mean curve gap':>16}"
    ]
    for model, batch in MODELS[bench_scale()]:
        workload = WorkloadConfig(model, "adamw", batch)
        truth = run_gpu_ground_truth(
            model, batch, "adamw",
            capacity_bytes=RTX_3060.job_budget(), seed=4, iterations=3,
        )
        estimate = XMemEstimator().estimate(workload, RTX_3060)
        assert estimate.curve is not None
        peak_gap = abs(
            estimate.peak_bytes - truth.peak_reserved_bytes
        ) / truth.peak_reserved_bytes
        curve_gap = _curve_gap(truth.timeline, estimate.curve)
        rows.append(
            f"{model:<16}{truth.peak_reserved_bytes / GB:>10.2f}G"
            f"{estimate.peak_bytes / GB:>10.2f}G"
            f"{peak_gap * 100:>9.1f}%"
            f"{curve_gap / GB:>14.3f}G"
        )
        assert peak_gap < 0.15  # the curves must track each other
    emit("fig6_fidelity", "\n".join(rows), capsys)

    model, batch = MODELS[bench_scale()][0]
    workload = WorkloadConfig(model, "adamw", batch)
    benchmark(lambda: XMemEstimator().estimate(workload, RTX_3060))
