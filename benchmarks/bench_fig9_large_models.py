"""Figure 9: large-model accuracy on the A100 (RQ5).

The three '*' models of Table 2 — Llama-3.2-3B-Instruct,
DeepSeek-R1-Distill-Qwen-1.5B, Qwen3-4B — at batch size 1 with the
memory-frugal optimizers (SGD, Adafactor), xMem vs DNNMem only (the other
baselines could not run in the paper's CoLab environment either).
"""

from __future__ import annotations

from repro.baselines.dnnmem import DNNMemEstimator
from repro.core.estimator import XMemEstimator
from repro.eval.metrics import relative_error
from repro.eval.workloads import rq5_grid
from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.units import GB
from repro.workload import A100_40GB

from _common import bench_scale, emit


def _grid():
    grid = rq5_grid()
    if bench_scale() == "smoke":
        # one (model, optimizer) pair per model, smallest model first
        return [w for w in grid if w.optimizer == "adafactor"][:1]
    if bench_scale() == "small":
        return [w for w in grid if w.optimizer == "adafactor"]
    return grid


def test_fig9_large_models_a100(benchmark, capsys):
    estimators = {"xMem": XMemEstimator(), "DNNMem": DNNMemEstimator()}
    rows = [
        f"{'model':<32}{'opt':>10}{'truth':>9}"
        + "".join(f"{name:>18}" for name in estimators)
    ]
    xmem_errors = []
    dnnmem_errors = []
    for workload in _grid():
        truth = run_gpu_ground_truth(
            workload.model,
            workload.batch_size,
            workload.optimizer,
            capacity_bytes=A100_40GB.job_budget(),
            seed=9,
        )
        assert not truth.oom  # RQ5 configurations all fit by design
        row = (
            f"{workload.model:<32}{workload.optimizer:>10}"
            f"{truth.measured_peak / GB:>8.1f}G"
        )
        for name, estimator in estimators.items():
            result = estimator.estimate(workload, A100_40GB)
            error = relative_error(result.peak_bytes, truth.measured_peak)
            (xmem_errors if name == "xMem" else dnnmem_errors).append(error)
            row += f"{result.peak_bytes / GB:>9.1f}G {error * 100:6.1f}%"
        rows.append(row)
    emit("fig9_large_models", "\n".join(rows), capsys)

    # paper: xMem MRE 1-9% on the A100 models; DNNMem 37-52%
    assert max(xmem_errors) < 0.15
    assert min(dnnmem_errors) > max(xmem_errors)

    workload = _grid()[0]
    benchmark(lambda: XMemEstimator().estimate(workload, A100_40GB))
