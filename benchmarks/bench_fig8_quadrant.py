"""Figures 8a/8b: the four-quadrant MRE-vs-PEF analysis.

Each point is one (estimator, model) pair placed by its median relative
error (y) and probability of estimation failure (x); 20% thresholds cut
the plane into Optimal / Overestimation / Underestimation / Worst.
"""

from __future__ import annotations

from repro.eval.reporting import quadrant_points, quadrant_summary

from _common import emit
from conftest import ESTIMATOR_NAMES


def _report(result, label: str, capsys, benchmark=None) -> dict:
    compute = lambda: (quadrant_points(result), quadrant_summary(result))
    points, summary = benchmark(compute) if benchmark else compute()
    lines = []
    for name in ESTIMATOR_NAMES:
        if name not in points:
            continue
        counts = summary[name]
        lines.append(
            f"{name:<12} optimal={counts['optimal']:<3} "
            f"over={counts['overestimation']:<3} "
            f"under={counts['underestimation']:<3} "
            f"worst={counts['worst']}"
        )
        for model, mre, pef in points[name]:
            lines.append(f"    {model:<30} MRE={mre:5.1f}%  PEF={pef:5.1f}%")
    emit(label, "\n".join(lines), capsys)
    return summary


def test_fig8a_quadrants_anova(anova_result, benchmark, capsys):
    summary = _report(anova_result, "fig8a_quadrant_anova", capsys, benchmark)
    if "xMem" in summary:
        counts = summary["xMem"]
        total = sum(counts.values())
        # paper: xMem models cluster dominantly in the Optimal quadrant
        assert counts["optimal"] >= total * 0.6
        # and never land in the Worst quadrant
        assert counts["worst"] == 0


def test_fig8b_quadrants_montecarlo(monte_carlo_result, benchmark, capsys):
    summary = _report(
        monte_carlo_result, "fig8b_quadrant_montecarlo", capsys, benchmark
    )
    if "xMem" in summary and "DNNMem" in summary:
        # xMem's optimal share beats every baseline's
        xmem_counts = summary["xMem"]
        xmem_share = xmem_counts["optimal"] / max(1, sum(xmem_counts.values()))
        for name in ("DNNMem", "SchedTune", "LLMem"):
            if name not in summary:
                continue
            counts = summary[name]
            share = counts["optimal"] / max(1, sum(counts.values()))
            assert xmem_share >= share
