"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, printing the
same rows/series the paper reports and saving them under
``benchmarks/results/``.  The ``XMEM_BENCH_SCALE`` environment variable
controls experiment size:

* ``smoke``  (default) — minutes, reduced grids, CI-friendly;
* ``small``  — a denser subsample;
* ``full``   — the paper's full grids (thousands of runs; hours).
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: per-scale knobs: (anova scale name, monte carlo samples, mc seed)
_SCALES = {
    "smoke": ("smoke", 16, 0),
    "small": ("small", 60, 0),
    "full": ("full", 1306, 0),
}


def bench_scale() -> str:
    scale = os.environ.get("XMEM_BENCH_SCALE", "smoke")
    if scale not in _SCALES:
        raise ValueError(
            f"XMEM_BENCH_SCALE={scale!r}; choose from {sorted(_SCALES)}"
        )
    return scale


def anova_scale() -> str:
    return _SCALES[bench_scale()][0]


def monte_carlo_samples() -> int:
    return _SCALES[bench_scale()][1]


def emit(name: str, text: str, capsys=None) -> None:
    """Print a report block (bypassing capture) and persist it."""
    banner = f"\n=== {name} (scale={bench_scale()}) ===\n"
    payload = banner + text + "\n"
    if capsys is not None:
        with capsys.disabled():
            print(payload)
    else:  # pragma: no cover - direct invocation
        print(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(payload)
