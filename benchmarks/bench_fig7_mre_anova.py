"""Figures 7a/7b: per-model MRE box plots from the systematic (ANOVA) grid.

Prints the per-model median relative error per estimator — the box centres
of the paper's Fig. 7a (CNNs) and Fig. 7b (transformers) — plus the
one-way ANOVA over the estimators' error distributions.
"""

from __future__ import annotations

from repro.eval.anova import anova_over_estimators, family_of
from repro.eval.reporting import format_mre_table, mre_box_table

from _common import emit
from conftest import ESTIMATOR_NAMES


def _family_table(result, family: str) -> str:
    lines = []
    for model, boxes in mre_box_table(result, ESTIMATOR_NAMES):
        if family_of(model) != family:
            continue
        row = model.ljust(28)
        for name in ESTIMATOR_NAMES:
            box = boxes[name]
            if box is None:
                row += "N/A".rjust(16)
            else:
                row += f"{box.median:6.1f} [{box.q1:5.1f},{box.q3:5.1f}]".rjust(16)
        lines.append(row)
    header = "Model".ljust(28) + "".join(
        f"{name} med[IQR]".rjust(16) for name in ESTIMATOR_NAMES
    )
    return "\n".join([header] + lines)


def test_fig7a_cnn_mre(anova_result, benchmark, capsys):
    emit("fig7a_cnn_mre_anova", _family_table(anova_result, "cnn"), capsys)
    xmem_medians = [
        boxes["xMem"].median
        for model, boxes in mre_box_table(anova_result, ESTIMATOR_NAMES)
        if family_of(model) == "cnn" and boxes["xMem"] is not None
    ]
    assert xmem_medians
    # paper: xMem CNN MRE mostly < 5%, always < 10% (here: median of medians)
    xmem_medians.sort()
    assert xmem_medians[len(xmem_medians) // 2] < 10.0
    benchmark(lambda: mre_box_table(anova_result, ESTIMATOR_NAMES))


def test_fig7b_transformer_mre(anova_result, benchmark, capsys):
    emit(
        "fig7b_transformer_mre_anova",
        _family_table(anova_result, "transformer"),
        capsys,
    )
    # pooled comparison: xMem's transformer MRE beats static analysis
    # (per-model boxes can cross at n=1; fragmentation-heavy models like
    # Qwen3 are the paper's own worst cases too)
    from repro.eval.metrics import median_relative_error

    def pooled(name: str):
        outcomes = [
            o
            for o in anova_result.outcomes
            if o.estimator == name
            and family_of(o.workload.model) == "transformer"
        ]
        return median_relative_error(outcomes)

    xmem_mre = pooled("xMem")
    dnnmem_mre = pooled("DNNMem")
    if xmem_mre is not None and dnnmem_mre is not None:
        assert xmem_mre < dnnmem_mre
    benchmark(lambda: format_mre_table(anova_result, ESTIMATOR_NAMES))


def test_fig7_anova_statistics(anova_result, benchmark, capsys):
    report = benchmark(lambda: anova_over_estimators(anova_result))
    lines = [f"group sizes: {report.group_sizes}"]
    if report.f_statistic is not None:
        lines.append(
            f"one-way ANOVA over estimators: "
            f"F={report.f_statistic:.2f}, p={report.p_value:.2e}"
        )
        # estimator choice must explain error variance decisively
        assert report.p_value < 0.05
    emit("fig7_anova_statistics", "\n".join(lines), capsys)
