"""Figure 1: optimizer.zero_grad() placement changes the segment footprint.

Regenerates the paper's motivating figure for the same three models
(distilGPT2, GPT-Neo, ConvNeXt): the Tensor and Segment peaks under POS0
(zero_grad before backward) vs POS1 (start of iteration).
"""

from __future__ import annotations

from repro.runtime.ground_truth import run_gpu_ground_truth
from repro.runtime.loop import POS0, POS1, TrainLoopConfig
from repro.units import GB
from repro.workload import RTX_3060

from _common import bench_scale, emit

MODELS = {
    "smoke": [("distilgpt2", 8)],
    "small": [("distilgpt2", 8), ("gpt-neo-125M", 8)],
    "full": [("distilgpt2", 16), ("gpt-neo-125M", 16), ("ConvNeXtBase", 200)],
}


def _run_position(model: str, batch: int, position: str):
    return run_gpu_ground_truth(
        model,
        batch,
        "adamw",
        loop=TrainLoopConfig(iterations=3, zero_grad_position=position),
        capacity_bytes=RTX_3060.job_budget(),
        seed=1,
        iterations=3,
    )


def test_fig1_zero_grad_placement(benchmark, capsys):
    models = MODELS[bench_scale()]
    rows = [
        f"{'model':<16}{'batch':>6}{'segment POS0':>14}{'segment POS1':>14}"
        f"{'tensor POS0':>13}{'tensor POS1':>13}{'delta':>8}"
    ]
    for model, batch in models:
        pos0 = _run_position(model, batch, POS0)
        pos1 = _run_position(model, batch, POS1)
        delta = (
            (pos0.peak_reserved_bytes - pos1.peak_reserved_bytes)
            / pos1.peak_reserved_bytes
        )
        rows.append(
            f"{model:<16}{batch:>6}"
            f"{pos0.peak_reserved_bytes / GB:>13.2f}G"
            f"{pos1.peak_reserved_bytes / GB:>13.2f}G"
            f"{pos0.peak_allocated_bytes / GB:>12.2f}G"
            f"{pos1.peak_allocated_bytes / GB:>12.2f}G"
            f"{delta * 100:>+7.1f}%"
        )
        # the paper's claim: the Segment gap exceeds the Tensor gap
        assert pos0.peak_reserved_bytes != pos1.peak_reserved_bytes
    emit("fig1_zero_grad", "\n".join(rows), capsys)

    model, batch = models[0]
    benchmark(lambda: _run_position(model, batch, POS0))
