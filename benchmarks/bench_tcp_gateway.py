"""TCP transport vs. thread driver: same sans-IO core, a socket between.

Races :class:`~repro.service.tcp.TcpEstimationServer` (an
:class:`~repro.service.aio.AsyncServiceGateway` behind the framed JSON
wire codec, driven through the blocking client) against the in-process
thread-driven :class:`~repro.service.gateway.ServiceGateway` on the
identical :class:`~repro.service.core.GatewayCore` state machine.

Acceptance (asserted):

* **byte identity** — estimates served over TCP equal direct estimator
  calls and the thread driver exactly (real ``XMemEstimator`` peaks +
  detail breakdown after a JSON round trip, and the deterministic
  synthetic peaks on *every* traffic scenario);
* **accounting** — both drivers account for every generated request
  (answered + shed + rejected + errors) on every scenario and reject
  the same adversarial requests — rejections cross the wire as typed
  errors, not generic failures;
* **observability identity** — with full telemetry, a replay over the
  socket produces the *same canonical ledger decision sequence*, the
  same decision summary, and the same canonical span trees as the
  thread driver on a dedup-race-free trace (unique fingerprints within
  each wave — intra-wave duplicates race between dedup and cache-hit by
  scheduling on every driver, see bench_telemetry_overhead.py);
* **throughput** — reported, not gated: the dev container has 1 CPU,
  and the interesting number (frame+loop overhead per request) is a
  ratio humans read from the artifact, not a portable floor.

``python bench_tcp_gateway.py [--smoke]`` runs standalone (``--smoke``
shrinks the replay for CI); under pytest the smoke size is used.
"""

from __future__ import annotations

import json
import os
import sys
from functools import partial

from repro.core.estimator import XMemEstimator
from repro.service import (
    SCENARIO_NAMES,
    AsyncServiceGateway,
    ServiceGateway,
    SyntheticEstimator,
    TcpServerThread,
    TcpServiceClient,
    Telemetry,
    TrafficRequest,
    TrafficTrace,
    canonical_trace_trees,
    generate_traffic,
    make_policy,
    replay,
)
from repro.workload import RTX_3060, WorkloadConfig

from _common import emit

NUM_SHARDS = 4
#: simulated sleep cost for the scenario sweep (GIL-released) — nonzero
#: so waves genuinely overlap in both substrates
WORK_SECONDS = 0.001

#: unique fingerprints *within* each wave: cross-wave repeats exercise
#: the cache deterministically, intra-wave duplicates would race between
#: dedup and cache-hit by scheduling (on every driver)
IDENTITY_WORKLOADS = [
    WorkloadConfig("MobileNetV3Small", "sgd", size) for size in (1, 2, 4, 8)
]


def _payload(report) -> dict:
    data = report.as_dict()
    aggregate = data.pop("stats")["aggregate"]
    data["cache_hit_rate"] = aggregate["cache_hit_rate"]
    return data


def _thread_gateway(factory, telemetry=None) -> ServiceGateway:
    return ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy("hash", NUM_SHARDS, seed=0),
        telemetry=telemetry,
    )


def _tcp_server(factory, telemetry=None) -> TcpServerThread:
    return TcpServerThread(
        partial(
            AsyncServiceGateway,
            num_shards=NUM_SHARDS,
            estimator_factory=factory,
            policy=make_policy("hash", NUM_SHARDS, seed=0),
            telemetry=telemetry,
        )
    )


def _replay_tcp(trace, factory, telemetry=None, probes=()):
    with _tcp_server(factory, telemetry=telemetry) as server:
        with TcpServiceClient(*server.address) as client:
            report = replay(trace, client)
            results = [client.estimate(w, RTX_3060) for w in probes]
    return report, results


def check_byte_identity() -> dict:
    """Results over the socket must equal direct estimator calls exactly.

    The wire codec is JSON, so this also pins encoding fidelity: integer
    byte counts, float timings, and the nested detail/role breakdowns
    must survive the round trip bit-for-bit.
    """
    workloads = [
        WorkloadConfig("MobileNetV3Small", "sgd", 8),
        WorkloadConfig("MobileNetV3Small", "adam", 16),
    ]
    factory = partial(XMemEstimator, iterations=1, curve=False)
    with _tcp_server(factory) as server:
        with TcpServiceClient(*server.address) as client:
            via_tcp = [client.estimate(w, RTX_3060) for w in workloads]
    with _thread_gateway(factory) as gateway:
        via_threads = [gateway.estimate(w, RTX_3060) for w in workloads]
    direct = [factory().estimate(w, RTX_3060) for w in workloads]
    for networked, threaded, reference in zip(via_tcp, via_threads, direct):
        assert networked.peak_bytes == reference.peak_bytes
        assert threaded.peak_bytes == reference.peak_bytes
        assert networked.detail == reference.detail
        assert threaded.detail == reference.detail
        assert networked.predicts_oom() == reference.predicts_oom()
        # the framed JSON trip must not lose the staged breakdown either
        assert set(networked.stage_seconds) == set(reference.stage_seconds)
    return {
        "workloads": [w.label() for w in workloads],
        "peak_bytes": [r.peak_bytes for r in direct],
        "byte_identical": True,
    }


def run_scenarios(num_requests: int) -> dict:
    """Every traffic scenario through both drivers: accounting + peaks."""
    factory = partial(SyntheticEstimator, work_seconds=WORK_SECONDS)
    scenarios = {}
    for name in SCENARIO_NAMES:
        trace = generate_traffic(name, num_requests, seed=0)
        with _thread_gateway(factory) as gateway:
            threads_report = replay(trace, gateway)
        tcp_report, _ = _replay_tcp(trace, factory)
        # per-scenario byte identity: the deterministic synthetic peak of
        # every *valid* unique request, served through each driver
        valid = {}
        for request in trace.requests:
            try:
                request.device.job_budget()
            except ValueError:
                continue  # adversarial budget-less device: both reject
            valid.setdefault(
                (request.workload.to_key(), request.device.to_key()),
                (request.workload, request.device),
            )
        probes = [
            (w, d) for w, d in list(valid.values())[:8] if _is_valid_workload(w)
        ]
        with _thread_gateway(factory) as gateway:
            threads_peaks = [
                gateway.estimate(w, d).peak_bytes for w, d in probes
            ]
        with _tcp_server(factory) as server:
            with TcpServiceClient(*server.address) as client:
                tcp_peaks = [
                    client.estimate(w, d).peak_bytes for w, d in probes
                ]
        scenarios[name] = {
            "threads": _payload(threads_report),
            "tcp": _payload(tcp_report),
            "peaks_byte_identical": threads_peaks == tcp_peaks,
            "unique_probes": len(probes),
        }
    return scenarios


def _is_valid_workload(workload: WorkloadConfig) -> bool:
    from repro.errors import ModelNotFoundError
    from repro.models.registry import get_model_spec

    try:
        get_model_spec(workload.model)
    except ModelNotFoundError:
        return False
    return True


def check_observability_identity(waves: int) -> dict:
    """Same trace, full telemetry: socket and threads, one story."""
    trace = TrafficTrace(
        scenario="warm",
        seed=0,
        requests=tuple(
            TrafficRequest(workload=workload, device=RTX_3060, wave=wave)
            for wave in range(waves)
            for workload in IDENTITY_WORKLOADS
        ),
    )
    factory = partial(SyntheticEstimator, work_seconds=WORK_SECONDS)

    telemetry = Telemetry(detail="full")
    with _thread_gateway(factory, telemetry=telemetry) as gateway:
        threads_report = replay(trace, gateway)
        threads_probes = [
            gateway.estimate(w, RTX_3060) for w in IDENTITY_WORKLOADS
        ]
    reference = {
        "payloads": [
            (r.peak_bytes, tuple(sorted(r.detail.items())))
            for r in threads_probes
        ],
        "trees": canonical_trace_trees(telemetry.spans()),
        "decisions": telemetry.ledger.decision_sequence(),
        "summary": telemetry.ledger.summary(),
    }
    assert threads_report.answered == len(trace)

    telemetry = Telemetry(detail="full")
    tcp_report, tcp_probes = _replay_tcp(
        trace, factory, telemetry=telemetry, probes=IDENTITY_WORKLOADS
    )
    networked = {
        "payloads": [
            (r.peak_bytes, tuple(sorted(r.detail.items())))
            for r in tcp_probes
        ],
        "trees": canonical_trace_trees(telemetry.spans()),
        "decisions": telemetry.ledger.decision_sequence(),
        "summary": telemetry.ledger.summary(),
    }
    assert tcp_report.answered == len(trace)
    assert networked["payloads"] == reference["payloads"]
    assert networked["summary"] == reference["summary"], (
        networked["summary"],
        reference["summary"],
    )
    assert networked["decisions"] == reference["decisions"]
    assert networked["trees"] == reference["trees"]
    return {
        "num_requests": len(trace),
        "decisions": len(reference["decisions"]),
        "decision_summary": dict(reference["summary"]),
        "traces": len(reference["trees"]),
        "identical": True,
    }


def run_throughput(num_requests: int) -> dict:
    """Socket overhead on a warm, cache-friendly stream — reported only.

    The trace is zipf (hot keys, high hit rate), so most requests cost
    one frame round trip and a cache lookup: the ratio below is close to
    a pure measure of codec + loop + syscall overhead per request.
    """
    factory = partial(SyntheticEstimator, work_seconds=WORK_SECONDS)
    trace = generate_traffic("zipf", num_requests, seed=0)
    with _thread_gateway(factory) as gateway:
        threads_rps = replay(trace, gateway).throughput_rps
    tcp_report, _ = _replay_tcp(trace, factory)
    with _tcp_server(factory) as server:
        with TcpServiceClient(*server.address) as client:
            rtt = min(client.ping() for _ in range(10))
    return {
        "num_requests": num_requests,
        "cpu_count": os.cpu_count(),
        "threads_rps": threads_rps,
        "tcp_rps": tcp_report.throughput_rps,
        "tcp_vs_threads": (
            tcp_report.throughput_rps / threads_rps if threads_rps else None
        ),
        "min_ping_ms": rtt * 1e3,
    }


def run_tcp_bench(num_requests: int = 200, waves: int = 3) -> dict:
    return {
        "num_shards": NUM_SHARDS,
        "num_requests": num_requests,
        "scenarios": run_scenarios(num_requests),
        "observability_identity": check_observability_identity(waves),
        "throughput": run_throughput(num_requests),
        "byte_identity": check_byte_identity(),
    }


def _check(report: dict) -> None:
    assert report["byte_identity"]["byte_identical"]
    assert report["observability_identity"]["identical"]
    for name, drivers in report["scenarios"].items():
        assert drivers["peaks_byte_identical"], name
        for driver in ("threads", "tcp"):
            scenario = drivers[driver]
            total = (
                scenario["answered"]
                + scenario["shed"]
                + scenario["rejected"]
                + scenario["errors"]
            )
            assert total == scenario["num_requests"], (name, driver, scenario)
        # validation is deterministic: both sides reject identically, and
        # the rejections crossed the wire as typed errors (not "errors")
        assert drivers["threads"]["rejected"] == drivers["tcp"]["rejected"], (
            name
        )
    assert report["scenarios"]["adversarial"]["tcp"]["rejected"] > 0
    for name in ("uniform", "zipf", "bursty", "duplicate-storm"):
        for driver in ("threads", "tcp"):
            assert report["scenarios"][name][driver]["errors"] == 0, name


def test_tcp_gateway_driver(capsys):
    report = run_tcp_bench(num_requests=120)
    emit("tcp_gateway_driver", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:]
    bench_report = run_tcp_bench(num_requests=120 if smoke else 400)
    _check(bench_report)
    emit("tcp_gateway_driver", json.dumps(bench_report, indent=2))
