"""Figures 7c/7d: per-model MRE boxes from the Monte Carlo runs.

Random configurations across both GPUs and both zero_grad placements —
the paper's robustness check on the same boxes as Figs. 7a/7b.
"""

from __future__ import annotations

from repro.eval.anova import family_of
from repro.eval.metrics import median_relative_error
from repro.eval.reporting import format_mre_table

from _common import emit
from conftest import ESTIMATOR_NAMES


def test_fig7cd_monte_carlo_mre(monte_carlo_result, benchmark, capsys):
    table = benchmark(
        lambda: format_mre_table(monte_carlo_result, ESTIMATOR_NAMES)
    )
    emit("fig7cd_mre_montecarlo", table, capsys)

    # aggregated MREs per estimator: xMem lowest overall (paper: ~4%)
    overall = {}
    for name in ESTIMATOR_NAMES:
        outcomes = [
            o for o in monte_carlo_result.outcomes if o.estimator == name
        ]
        mre = median_relative_error(outcomes)
        if mre is not None:
            overall[name] = mre
    assert overall["xMem"] == min(overall.values())
    assert overall["xMem"] < 0.10


def test_fig7cd_family_aggregates(monte_carlo_result, capsys, benchmark):
    def aggregate():
        rows = []
        for family in ("cnn", "transformer"):
            cells = {}
            for name in ESTIMATOR_NAMES:
                outcomes = [
                    o
                    for o in monte_carlo_result.outcomes
                    if o.estimator == name
                    and family_of(o.workload.model) == family
                ]
                mre = median_relative_error(outcomes)
                cells[name] = "N/A" if mre is None else f"{mre * 100:.1f}%"
            rows.append((family, cells))
        return rows

    rows = benchmark(aggregate)
    lines = [
        "family".ljust(14)
        + "".join(name.rjust(12) for name in ESTIMATOR_NAMES)
    ]
    for family, cells in rows:
        lines.append(
            family.ljust(14)
            + "".join(cells[name].rjust(12) for name in ESTIMATOR_NAMES)
        )
    emit("fig7cd_family_mre", "\n".join(lines), capsys)
