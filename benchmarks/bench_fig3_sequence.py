"""Figure 3: the deallocation order of identical tensors changes the peak.

The paper's example: moving one block's deallocation relative to the next
allocations drops the peak segment memory from 196 MB to 118 MB.  The
reproduction replays two orderings of the same tensor set through the
allocator simulation.
"""

from __future__ import annotations

from repro.core.orchestrator import EventKind, MemoryOp, OrchestratedSequence
from repro.core.simulator import MemorySimulator
from repro.units import MB

from _common import emit

# the paper's figure uses a handful of tens-of-MB tensors
TENSORS = [78 * MB, 40 * MB, 40 * MB, 38 * MB]


def _sequence(early_free: bool) -> OrchestratedSequence:
    """Sequence 1 frees the big block late; sequence 2 frees it before the
    follow-up allocations (same tensors, different order)."""
    events: list[MemoryOp] = []
    ts = 0

    def step(kind, block_id, size):
        nonlocal ts
        ts += 1
        events.append(MemoryOp(ts=ts, kind=kind, block_id=block_id, size=size))

    step(EventKind.ALLOC, 0, TENSORS[0])
    if early_free:
        step(EventKind.FREE, 0, TENSORS[0])
    for index, size in enumerate(TENSORS[1:], start=1):
        step(EventKind.ALLOC, index, size)
    if not early_free:
        step(EventKind.FREE, 0, TENSORS[0])
    for index, size in enumerate(TENSORS[1:], start=1):
        step(EventKind.FREE, index, size)
    return OrchestratedSequence(
        events=events, horizon=ts + 1, num_blocks=len(TENSORS),
        persistent_bytes=0,
    )


def test_fig3_sequence_sensitivity(benchmark, capsys):
    late = MemorySimulator().replay(_sequence(early_free=False))
    early = MemorySimulator().replay(_sequence(early_free=True))
    rows = [
        f"{'sequence':<34}{'peak segment memory':>22}",
        f"{'1: free after next allocations':<34}"
        f"{late.peak_reserved_bytes / MB:>20.0f}MB",
        f"{'2: free before next allocations':<34}"
        f"{early.peak_reserved_bytes / MB:>20.0f}MB",
    ]
    # the paper's qualitative result: sequence 2 peaks far lower
    assert early.peak_reserved_bytes < late.peak_reserved_bytes
    reduction = 1 - early.peak_reserved_bytes / late.peak_reserved_bytes
    rows.append(f"reduction: {reduction * 100:.0f}% (paper: 196MB -> 118MB, 40%)")
    emit("fig3_sequence", "\n".join(rows), capsys)

    benchmark(lambda: MemorySimulator().replay(_sequence(early_free=True)))
