"""Control-plane fairness benchmark: noisy neighbor vs. QoS isolation.

Replays the ``noisy-neighbor`` multi-tenant trace (one hostile tenant
flooding at ~10x its quota, one well-behaved tenant on a hot working
set) against a gateway running the calibrated
:class:`~repro.service.control.ControlPlane`, and holds the admission
plane to four acceptance properties:

* **latency isolation** — the well-behaved tenant's p99 latency under
  the flood stays within ``P99_RATIO_CEILING`` (2x) of its solo-run
  baseline (same gateway, hostile traffic removed);
* **shed targeting** — the flood is absorbed by the *hostile* tenant's
  quota bucket: the hostile tenant loses at least
  ``HOSTILE_SHED_FLOOR`` of its submissions while the well-behaved
  tenant suffers **zero** control-plane sheds;
* **cheap admission** — one ``ControlPlane.admit`` decision costs at
  most ``ADMIT_OVERHEAD_CEILING_US`` microseconds (it sits on every
  gateway submission);
* **cross-driver determinism** — the admit/shed decision sequence for
  the same trace is byte-identical across the threads, asyncio,
  procpool, and TCP drivers
  (:meth:`~repro.service.telemetry.AuditLedger.decision_sequence`).

Writes ``BENCH_control.json`` at the repository root; CI gates it on
the checked-in baseline via
``check_regression.py --preset control`` (metrics: ``well_p99_ratio``
lower-is-better, ``hostile_shed_fraction`` higher-is-better,
``admission_overhead_us`` lower-is-better).

``python bench_control_plane.py [--quick]`` runs standalone
(``--quick`` shrinks the trace for CI); under pytest the quick size is
used.
"""

from __future__ import annotations

import json
import sys
import time
from functools import partial
from pathlib import Path

from repro.service import (
    AsyncServiceGateway,
    ControlPlane,
    ProcServiceGateway,
    ServiceGateway,
    SyntheticEstimator,
    TcpServerThread,
    TcpServiceClient,
    Telemetry,
    TenantConfig,
    TrafficTrace,
    generate_traffic,
    make_control,
    make_policy,
    replay,
)
from repro.service.telemetry.ledger import AUTH, DEADLINE, QUOTA, SHED

from _common import emit

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_control.json"

NUM_SHARDS = 4
#: simulated per-estimate cost (sleep: releases the GIL) — large enough
#: that queue contention would show in the well-behaved tenant's p99 if
#: the hostile flood reached the queues instead of its quota bucket
WORK_SECONDS = 0.002
#: latency repetitions: p99 over few-dozen samples on a shared 1-core
#: runner is noisy, so both solo and contended runs are repeated and the
#: median p99 compared
LATENCY_REPEATS = 3

P99_RATIO_CEILING = 2.0
HOSTILE_SHED_FLOOR = 0.5
ADMIT_OVERHEAD_CEILING_US = 250.0

#: admission decisions in the ledger's decision_sequence() view
_ADMISSION_EVENTS = (QUOTA, AUTH, DEADLINE, SHED)


def _factory():
    return partial(SyntheticEstimator, work_seconds=WORK_SECONDS)


def _thread_gateway(telemetry=None):
    return ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=_factory(),
        policy=make_policy("hash", NUM_SHARDS, seed=0),
        max_queue_depth=256,
        # headroom for the hostile quota burst: the fairness claim is
        # about the *admission* plane, so the few admitted hostile
        # requests must not serialize behind too few workers
        max_workers_per_shard=4,
        telemetry=telemetry,
        control=make_control("noisy-neighbor"),
    )


def _solo_trace(trace: TrafficTrace) -> TrafficTrace:
    """The same trace with the hostile tenant's traffic removed."""
    return TrafficTrace(
        scenario=trace.scenario,
        seed=trace.seed,
        requests=tuple(
            request
            for request in trace.requests
            if request.tenant == "well-behaved"
        ),
    )


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _well_p99_ms(trace: TrafficTrace) -> float:
    """Median-of-N p99 latency (ms) of the well-behaved tenant."""
    samples = []
    for _ in range(LATENCY_REPEATS):
        with _thread_gateway() as gateway:
            report = replay(trace, gateway)
        samples.append(report.tenant_latency_ms("well-behaved", 99))
    return _median(samples)


def measure_admission_overhead_us(calls: int = 2000) -> float:
    """Best-of-5 mean cost of one ControlPlane.admit decision (µs).

    Quota generous enough that every call admits — the hot path, paid
    by every accepted request; denials are rarer and cheaper (no bucket
    is drained).
    """
    best = float("inf")
    for _ in range(5):
        plane = ControlPlane(
            [TenantConfig("t", quota_rate=2.0, quota_burst=calls * 2.0)],
            admit_rate=2.0,
            admit_burst=calls * 2.0,
        )
        started = time.perf_counter()
        for _ in range(calls):
            plane.admit(tenant="t")
        elapsed = time.perf_counter() - started
        best = min(best, elapsed / calls * 1e6)
    return best


def _admission_sequence(ledger) -> list[tuple]:
    return [
        entry
        for entry in ledger.decision_sequence()
        if entry[0] in _ADMISSION_EVENTS
    ]


def check_cross_driver_determinism(num_requests: int, seed: int) -> dict:
    """Same trace, four drivers: one admit/shed decision sequence."""
    trace = generate_traffic("noisy-neighbor", num_requests, seed=seed)
    factory = _factory()
    policy_args = ("hash", NUM_SHARDS)
    sequences = {}
    reports = {}

    telemetry = Telemetry()
    with ServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy(*policy_args, seed=0),
        telemetry=telemetry,
        control=make_control("noisy-neighbor"),
    ) as gateway:
        reports["threads"] = replay(trace, gateway)
    sequences["threads"] = _admission_sequence(telemetry.ledger)

    telemetry = Telemetry()
    with ProcServiceGateway(
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy(*policy_args, seed=0),
        telemetry=telemetry,
        control=make_control("noisy-neighbor"),
    ) as gateway:
        reports["processes"] = replay(trace, gateway)
    sequences["processes"] = _admission_sequence(telemetry.ledger)

    import asyncio

    from repro.service import replay_async

    async def _run_asyncio(telemetry):
        gateway = AsyncServiceGateway(
            num_shards=NUM_SHARDS,
            estimator_factory=factory,
            policy=make_policy(*policy_args, seed=0),
            telemetry=telemetry,
            control=make_control("noisy-neighbor"),
        )
        try:
            return await replay_async(trace, gateway)
        finally:
            await gateway.aclose()

    telemetry = Telemetry()
    reports["asyncio"] = asyncio.run(_run_asyncio(telemetry))
    sequences["asyncio"] = _admission_sequence(telemetry.ledger)

    telemetry = Telemetry()
    server_factory = partial(
        AsyncServiceGateway,
        num_shards=NUM_SHARDS,
        estimator_factory=factory,
        policy=make_policy(*policy_args, seed=0),
        telemetry=telemetry,
        control=make_control("noisy-neighbor"),
    )
    with TcpServerThread(server_factory) as server:
        with TcpServiceClient(*server.address) as client:
            reports["tcp"] = replay(trace, client)
    sequences["tcp"] = _admission_sequence(telemetry.ledger)

    reference = sequences["threads"]
    assert reference, "noisy-neighbor trace produced no admission events"
    for driver, sequence in sequences.items():
        assert sequence == reference, (
            f"{driver} admission decisions diverged from threads: "
            f"{sequence[:3]} vs {reference[:3]}"
        )
    # shed targeting must agree too, not just the event stream
    for driver, report in reports.items():
        well = report.tenants["well-behaved"]
        assert well["quota_shed"] == 0, (
            f"{driver}: well-behaved tenant lost {well['quota_shed']} "
            "requests to the control plane"
        )
    return {
        "drivers": sorted(sequences),
        "decision_events": len(reference),
        "identical": True,
    }


def run_control_bench(num_requests: int = 240, seed: int = 0) -> dict:
    trace = generate_traffic("noisy-neighbor", num_requests, seed=seed)
    solo = _solo_trace(trace)

    solo_p99_ms = _well_p99_ms(solo)
    contended_p99_ms = _well_p99_ms(trace)
    # the ratio's denominator gets a small absolute floor so a
    # sub-millisecond all-cache-hit solo run cannot turn scheduler
    # jitter into a fake regression
    ratio = contended_p99_ms / max(solo_p99_ms, 1.0)

    with _thread_gateway() as gateway:
        contended = replay(trace, gateway)
    well = contended.tenants["well-behaved"]
    hostile = contended.tenants["hostile"]
    hostile_shed_fraction = hostile["shed"] / hostile["submitted"]

    assert well["quota_shed"] == 0, (
        f"well-behaved tenant lost {well['quota_shed']} requests to the "
        "control plane while inside its quota"
    )
    assert well["answered"] == well["submitted"], (
        f"well-behaved tenant answered {well['answered']} of "
        f"{well['submitted']} under the flood"
    )
    assert ratio <= P99_RATIO_CEILING, (
        f"well-behaved p99 {contended_p99_ms:.2f} ms under the flood is "
        f"{ratio:.2f}x its solo baseline {solo_p99_ms:.2f} ms "
        f"(ceiling {P99_RATIO_CEILING}x)"
    )
    assert hostile_shed_fraction >= HOSTILE_SHED_FLOOR, (
        f"hostile tenant flooding at ~10x quota only shed "
        f"{hostile_shed_fraction:.0%} (floor {HOSTILE_SHED_FLOOR:.0%})"
    )

    overhead_us = measure_admission_overhead_us()
    assert overhead_us <= ADMIT_OVERHEAD_CEILING_US, (
        f"one admit decision costs {overhead_us:.1f} µs "
        f"(ceiling {ADMIT_OVERHEAD_CEILING_US} µs)"
    )

    determinism = check_cross_driver_determinism(
        min(num_requests, 96), seed
    )

    return {
        "quick": num_requests <= 96,
        "grid": [f"noisy-neighbor/{num_requests}req/{NUM_SHARDS}shards"],
        "num_requests": num_requests,
        "num_shards": NUM_SHARDS,
        "solo_p99_ms": solo_p99_ms,
        "contended_p99_ms": contended_p99_ms,
        "well_p99_ratio": ratio,
        "well_behaved": well,
        "hostile": hostile,
        "hostile_shed_fraction": hostile_shed_fraction,
        "admission_overhead_us": overhead_us,
        "cross_driver": determinism,
    }


def _check(report: dict) -> None:
    assert report["well_p99_ratio"] <= P99_RATIO_CEILING
    assert report["well_behaved"]["quota_shed"] == 0
    assert report["hostile_shed_fraction"] >= HOSTILE_SHED_FLOOR
    assert report["admission_overhead_us"] <= ADMIT_OVERHEAD_CEILING_US
    assert report["cross_driver"]["identical"]


def _write_report(report: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_control_plane_fairness(capsys):
    report = run_control_bench(num_requests=96)
    _write_report(report)
    emit("control_plane", json.dumps(report, indent=2), capsys)
    _check(report)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    bench_report = run_control_bench(num_requests=96 if quick else 240)
    _check(bench_report)
    _write_report(bench_report)
    emit("control_plane", json.dumps(bench_report, indent=2))
