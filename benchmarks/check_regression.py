"""Benchmark regression gate: BENCH_pipeline.json vs. the checked-in baseline.

The stage-cache benchmark (:mod:`bench_pipeline_stages`) already asserts
*invariants* (warm >= 3x cold, byte-identical peaks); this gate asserts
*non-regression* against a committed reference, so a PR that quietly
halves the stage-cache win — without dipping below the absolute floor —
still fails CI.

Compared metrics (from the report both runs write):

* ``warm_speedup``   — cold/warm wall-clock ratio; **higher is better**.
  Hardware-neutral: both sides of the ratio ran on the same machine.
* ``warm_cell_ms``   — absolute warm per-cell latency; **lower is
  better**.  Hardware-sensitive: expect to retune the tolerance (or the
  baseline) when the CI runner generation changes.

A metric regresses when it is worse than the baseline by more than the
tolerance (default +/-30%, ``--tolerance`` / per-metric ``--override``).
Improvements never fail the gate — refresh the baseline to bank them.

Always writes a trend artifact (``BENCH_pipeline.trend.json``): baseline
vs. current vs. relative delta per metric, plus the verdict — CI uploads
it on success *and* failure, so a regression comes with its numbers.

Exit codes: 0 ok, 1 regression, 2 missing/incomparable inputs.

Usage::

    python benchmarks/check_regression.py \
        [--preset pipeline|artifacts] \
        [--current BENCH_pipeline.json] \
        [--baseline benchmarks/baselines/BENCH_pipeline.baseline.json] \
        [--tolerance 0.30] [--override warm_cell_ms=0.60] \
        [--trend-out BENCH_pipeline.trend.json]

``--preset`` picks the metric set *and* the default report/baseline/
trend paths, so the artifact-store lane is one flag:
``--preset artifacts`` gates ``BENCH_artifacts.json`` on
``store_speedup`` / ``store_cell_ms``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"

#: metric -> direction ("higher" / "lower" is better) — the default
#: (pipeline) preset; kept at module level for the gate's own tests
METRICS = {
    "warm_speedup": "higher",
    "warm_cell_ms": "lower",
}

#: preset -> (metrics, report basename); the basename derives the
#: default --current (repo root), --baseline (benchmarks/baselines/) and
#: --trend-out paths
METRIC_PRESETS = {
    "pipeline": (METRICS, "BENCH_pipeline"),
    "artifacts": (
        {
            "store_speedup": "higher",
            "store_cell_ms": "lower",
        },
        "BENCH_artifacts",
    ),
    "control": (
        {
            # well-behaved p99 under the hostile flood vs. solo, as a
            # ratio — hardware-neutral (both sides ran on this machine)
            "well_p99_ratio": "lower",
            # fraction of the hostile flood absorbed by its own quota
            "hostile_shed_fraction": "higher",
            # absolute cost of one ControlPlane.admit decision
            "admission_overhead_us": "lower",
        },
        "BENCH_control",
    ),
}

DEFAULT_CURRENT = REPO_ROOT / "BENCH_pipeline.json"
DEFAULT_BASELINE = BASELINES / "BENCH_pipeline.baseline.json"
DEFAULT_TREND = REPO_ROOT / "BENCH_pipeline.trend.json"


def parse_overrides(
    pairs: list[str], metrics: dict | None = None
) -> dict[str, float]:
    metrics = METRICS if metrics is None else metrics
    overrides = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if name not in metrics:
            print(
                f"error: unknown metric {name!r}; known: {sorted(metrics)}",
                file=sys.stderr,
            )
            raise SystemExit(2)  # bad input, not a benchmark regression
        try:
            overrides[name] = float(value)
        except ValueError:
            print(
                f"error: --override wants NAME=FLOAT, got {pair!r}",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    return overrides


def compare(
    baseline: dict,
    current: dict,
    tolerance: float,
    overrides: dict,
    metrics: dict | None = None,
) -> dict:
    """Per-metric verdicts + the overall one (pure, tested directly)."""
    metrics = METRICS if metrics is None else metrics
    rows = {}
    regressions = []
    for metric, direction in metrics.items():
        base = baseline.get(metric)
        now = current.get(metric)
        tol = overrides.get(metric, tolerance)
        row = {
            "baseline": base,
            "current": now,
            "direction": direction,
            "tolerance": tol,
        }
        if base is None or now is None or base == 0:
            row["verdict"] = "not-comparable"
        else:
            delta = (now - base) / base
            row["delta"] = delta
            if direction == "higher":
                regressed = now < base * (1 - tol)
            else:
                regressed = now > base * (1 + tol)
            row["verdict"] = "regression" if regressed else "ok"
            if regressed:
                regressions.append(metric)
        rows[metric] = row
    return {
        "metrics": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    # validated by hand below, not argparse choices=: an unknown preset
    # must exit 2 with the valid names on stderr (the same contract as
    # a missing report file), not argparse's usage dump
    parser.add_argument(
        "--preset", default="pipeline",
        help="metric set + default paths "
        f"(one of {', '.join(sorted(METRIC_PRESETS))}; default: pipeline)",
    )
    parser.add_argument("--current", type=Path, default=None)
    parser.add_argument("--baseline", type=Path, default=None)
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed relative worsening per metric (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--override", action="append", default=[], metavar="METRIC=TOL",
        help="per-metric tolerance override, repeatable "
        "(e.g. warm_cell_ms=0.60 for a noisier hosted runner)",
    )
    parser.add_argument("--trend-out", type=Path, default=None)
    args = parser.parse_args(argv)

    if args.preset not in METRIC_PRESETS:
        print(
            f"error: unknown preset {args.preset!r}; "
            f"valid presets: {', '.join(sorted(METRIC_PRESETS))}",
            file=sys.stderr,
        )
        return 2
    metrics, basename = METRIC_PRESETS[args.preset]
    if args.current is None:
        args.current = REPO_ROOT / f"{basename}.json"
    if args.baseline is None:
        args.baseline = BASELINES / f"{basename}.baseline.json"
    if args.trend_out is None:
        args.trend_out = REPO_ROOT / f"{basename}.trend.json"

    for path, what in ((args.current, "current"), (args.baseline, "baseline")):
        if not path.exists():
            print(f"error: {what} report {path} not found", file=sys.stderr)
            return 2
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    verdict = compare(
        baseline,
        current,
        args.tolerance,
        parse_overrides(args.override, metrics),
        metrics,
    )
    comparable = current.get("quick") == baseline.get("quick") and (
        current.get("grid") == baseline.get("grid")
    )
    if not comparable:
        # runs over different work (a --quick run against a full-grid
        # baseline, or an edited quick grid against a stale baseline)
        # measure nothing comparable; gate nothing, but say so loudly in
        # the artifact so the baseline gets refreshed
        verdict["ok"] = True
        verdict["regressions"] = []
        verdict["skipped"] = (
            f"grid mismatch: current quick={current.get('quick')} "
            f"grid={current.get('grid')} vs baseline "
            f"quick={baseline.get('quick')} grid={baseline.get('grid')} "
            f"— not comparable; refresh the baseline"
        )

    trend = {
        "baseline_grid": baseline.get("grid"),
        "current_grid": current.get("grid"),
        **verdict,
    }
    args.trend_out.write_text(json.dumps(trend, indent=2) + "\n")

    for metric, row in verdict["metrics"].items():
        delta = row.get("delta")
        print(
            f"{metric:<14} baseline={row['baseline']!r:<10} "
            f"current={row['current']!r:<10} "
            f"delta={'n/a' if delta is None else f'{delta:+.1%}'} "
            f"[{row['verdict']}]"
        )
    if verdict.get("skipped"):
        print(f"gate skipped: {verdict['skipped']}")
        return 0
    if not verdict["ok"]:
        # name every tripped metric with its numbers: a red CI lane must
        # say *what* regressed, not just that something did
        for metric in verdict["regressions"]:
            row = verdict["metrics"][metric]
            worse = "below" if row["direction"] == "higher" else "above"
            print(
                f"REGRESSION: {metric} ({row['direction']}-is-better) "
                f"went from {row['baseline']:.4g} to {row['current']:.4g} "
                f"({row['delta']:+.1%}), {worse} the "
                f"{row['tolerance']:.0%} tolerance band",
                file=sys.stderr,
            )
        print(
            f"REGRESSION: {', '.join(verdict['regressions'])} worse than "
            f"baseline beyond tolerance (trend written to {args.trend_out})",
            file=sys.stderr,
        )
        return 1
    print(f"benchmark within tolerance (trend written to {args.trend_out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
