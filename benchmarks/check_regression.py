"""Benchmark regression gate: BENCH_pipeline.json vs. the checked-in baseline.

The stage-cache benchmark (:mod:`bench_pipeline_stages`) already asserts
*invariants* (warm >= 3x cold, byte-identical peaks); this gate asserts
*non-regression* against a committed reference, so a PR that quietly
halves the stage-cache win — without dipping below the absolute floor —
still fails CI.

Compared metrics (from the report both runs write):

* ``warm_speedup``   — cold/warm wall-clock ratio; **higher is better**.
  Hardware-neutral: both sides of the ratio ran on the same machine.
* ``warm_cell_ms``   — absolute warm per-cell latency; **lower is
  better**.  Hardware-sensitive: expect to retune the tolerance (or the
  baseline) when the CI runner generation changes.

A metric regresses when it is worse than the baseline by more than the
tolerance (default +/-30%, ``--tolerance`` / per-metric ``--override``).
Improvements never fail the gate — refresh the baseline to bank them.

Always writes a trend artifact (``BENCH_pipeline.trend.json``): baseline
vs. current vs. relative delta per metric, plus the verdict — CI uploads
it on success *and* failure, so a regression comes with its numbers.

Exit codes: 0 ok, 1 regression, 2 missing/incomparable inputs.

Usage::

    python benchmarks/check_regression.py \
        [--current BENCH_pipeline.json] \
        [--baseline benchmarks/baselines/BENCH_pipeline.baseline.json] \
        [--tolerance 0.30] [--override warm_cell_ms=0.60] \
        [--trend-out BENCH_pipeline.trend.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "BENCH_pipeline.json"
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "BENCH_pipeline.baseline.json"
)
DEFAULT_TREND = REPO_ROOT / "BENCH_pipeline.trend.json"

#: metric -> direction ("higher" / "lower" is better)
METRICS = {
    "warm_speedup": "higher",
    "warm_cell_ms": "lower",
}


def parse_overrides(pairs: list[str]) -> dict[str, float]:
    overrides = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if name not in METRICS:
            print(
                f"error: unknown metric {name!r}; known: {sorted(METRICS)}",
                file=sys.stderr,
            )
            raise SystemExit(2)  # bad input, not a benchmark regression
        try:
            overrides[name] = float(value)
        except ValueError:
            print(
                f"error: --override wants NAME=FLOAT, got {pair!r}",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    return overrides


def compare(
    baseline: dict, current: dict, tolerance: float, overrides: dict
) -> dict:
    """Per-metric verdicts + the overall one (pure, tested directly)."""
    rows = {}
    regressions = []
    for metric, direction in METRICS.items():
        base = baseline.get(metric)
        now = current.get(metric)
        tol = overrides.get(metric, tolerance)
        row = {
            "baseline": base,
            "current": now,
            "direction": direction,
            "tolerance": tol,
        }
        if base is None or now is None or base == 0:
            row["verdict"] = "not-comparable"
        else:
            delta = (now - base) / base
            row["delta"] = delta
            if direction == "higher":
                regressed = now < base * (1 - tol)
            else:
                regressed = now > base * (1 + tol)
            row["verdict"] = "regression" if regressed else "ok"
            if regressed:
                regressions.append(metric)
        rows[metric] = row
    return {
        "metrics": rows,
        "regressions": regressions,
        "ok": not regressions,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", type=Path, default=DEFAULT_CURRENT)
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed relative worsening per metric (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--override", action="append", default=[], metavar="METRIC=TOL",
        help="per-metric tolerance override, repeatable "
        "(e.g. warm_cell_ms=0.60 for a noisier hosted runner)",
    )
    parser.add_argument("--trend-out", type=Path, default=DEFAULT_TREND)
    args = parser.parse_args(argv)

    for path, what in ((args.current, "current"), (args.baseline, "baseline")):
        if not path.exists():
            print(f"error: {what} report {path} not found", file=sys.stderr)
            return 2
    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())

    verdict = compare(
        baseline, current, args.tolerance, parse_overrides(args.override)
    )
    comparable = current.get("quick") == baseline.get("quick") and (
        current.get("grid") == baseline.get("grid")
    )
    if not comparable:
        # runs over different work (a --quick run against a full-grid
        # baseline, or an edited quick grid against a stale baseline)
        # measure nothing comparable; gate nothing, but say so loudly in
        # the artifact so the baseline gets refreshed
        verdict["ok"] = True
        verdict["regressions"] = []
        verdict["skipped"] = (
            f"grid mismatch: current quick={current.get('quick')} "
            f"grid={current.get('grid')} vs baseline "
            f"quick={baseline.get('quick')} grid={baseline.get('grid')} "
            f"— not comparable; refresh the baseline"
        )

    trend = {
        "baseline_grid": baseline.get("grid"),
        "current_grid": current.get("grid"),
        **verdict,
    }
    args.trend_out.write_text(json.dumps(trend, indent=2) + "\n")

    for metric, row in verdict["metrics"].items():
        delta = row.get("delta")
        print(
            f"{metric:<14} baseline={row['baseline']!r:<10} "
            f"current={row['current']!r:<10} "
            f"delta={'n/a' if delta is None else f'{delta:+.1%}'} "
            f"[{row['verdict']}]"
        )
    if verdict.get("skipped"):
        print(f"gate skipped: {verdict['skipped']}")
        return 0
    if not verdict["ok"]:
        print(
            f"REGRESSION: {', '.join(verdict['regressions'])} worse than "
            f"baseline beyond tolerance (trend written to {args.trend_out})",
            file=sys.stderr,
        )
        return 1
    print(f"benchmark within tolerance (trend written to {args.trend_out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
