"""Render the benchmark trend artifact for humans.

``check_regression.py`` writes ``BENCH_pipeline.trend.json`` — baseline
vs. current vs. delta per metric plus the gate verdict.  This tool
renders that JSON through
:func:`repro.service.telemetry.report.render_trend_summary` into the
plain-text table CI uploads next to the raw artifact, so a regression
is legible from the artifact listing without re-deriving deltas.

Exit codes: 0 rendered, 2 missing/unreadable input.

Usage::

    python benchmarks/render_trend.py \
        [--trend BENCH_pipeline.trend.json] \
        [--out BENCH_pipeline.trend.txt]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # standalone invocation
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.telemetry.report import render_trend_summary  # noqa: E402

DEFAULT_TREND = REPO_ROOT / "BENCH_pipeline.trend.json"
DEFAULT_OUT = REPO_ROOT / "BENCH_pipeline.trend.txt"


def render_file(trend_path: Path) -> str:
    """Load one trend JSON and return the rendered table."""
    trend = json.loads(trend_path.read_text())
    return render_trend_summary(trend)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trend", type=Path, default=DEFAULT_TREND)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if not args.trend.exists():
        print(f"error: trend report {args.trend} not found", file=sys.stderr)
        return 2
    try:
        text = render_file(args.trend)
    except (json.JSONDecodeError, AttributeError) as error:
        print(f"error: unreadable trend report: {error}", file=sys.stderr)
        return 2
    args.out.write_text(text + "\n")
    print(text)
    print(f"\n(written to {args.out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
